"""Tests for the architecture layer: ledgers, configs, mapping, machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    CrossbarMapping,
    DirectECimAnnealer,
    HardwareConfig,
    InSituCimAnnealer,
    Ledger,
)
from repro.ising import IsingModel, MaxCutProblem


@pytest.fixture
def problem():
    return MaxCutProblem.random(32, 120, seed=2)


class TestLedger:
    def test_accumulates(self):
        led = Ledger()
        led.add("adc", energy=1.0, time=2.0, count=3)
        led.add("adc", energy=0.5, time=0.5, count=1)
        led.add("logic", energy=0.25)
        assert led.total_energy == pytest.approx(1.75)
        assert led.total_time == pytest.approx(2.5)
        assert led.entries["adc"].count == 4

    def test_merge(self):
        a, b = Ledger(), Ledger()
        a.add("x", energy=1.0)
        b.add("x", energy=2.0)
        b.add("y", time=1.0)
        a.merge(b)
        assert a.total_energy == pytest.approx(3.0)
        assert a.total_time == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Ledger().add("x", energy=-1.0)

    def test_breakdown_and_share(self):
        led = Ledger()
        led.add("adc", energy=3.0)
        led.add("exp", energy=1.0)
        assert led.energy_breakdown() == {"adc": 3.0, "exp": 1.0}
        assert led.energy_share("adc") == pytest.approx(0.75)
        assert led.energy_share("missing") == 0.0

    def test_table_renders(self):
        led = Ledger()
        led.add("adc", energy=1e-12, time=1e-9)
        table = led.as_table("test")
        assert "adc" in table
        assert "TOTAL" in table


class TestHardwareConfig:
    def test_named_configs(self):
        prop = HardwareConfig.proposed()
        fpga = HardwareConfig.baseline_fpga()
        asic = HardwareConfig.baseline_asic()
        assert prop.exponent is None
        assert fpga.exponent.energy_per_eval > asic.exponent.energy_per_eval
        assert "FPGA" in fpga.label and "ASIC" in asic.label

    def test_with_adc(self):
        from repro.circuits import SarAdc

        cfg = HardwareConfig.proposed().with_adc(SarAdc(bits=6))
        assert cfg.adc.bits == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(quantization_bits=0)


class TestMapping:
    def test_geometry(self):
        m = CrossbarMapping(num_spins=100, bits=4, planes=1)
        assert m.num_columns == 400
        assert m.num_adcs == 50
        assert m.num_cells == 40_000

    def test_full_activation_counts(self):
        m = CrossbarMapping(num_spins=100, bits=4, planes=1)
        assert m.full_activation_conversions() == 800
        assert m.full_activation_slots() == 16

    def test_incremental_counts(self):
        m = CrossbarMapping(num_spins=100, bits=4, planes=1)
        assert m.incremental_conversions(1) == 8
        assert m.incremental_slots(1) == 2  # one slot per phase
        assert m.incremental_slots(0) == 0

    def test_incremental_slots_grow_past_adc_population(self):
        m = CrossbarMapping(num_spins=4, bits=4, planes=1, mux_ratio=8)
        # only 2 ADCs exist; activating 3 elements (12 columns) needs 6 slots/phase
        assert m.incremental_slots(3) == 2 * 6

    def test_for_matrix_detects_planes(self):
        pos = np.array([[0.0, 1.0], [1.0, 0.0]])
        signed = np.array([[0.0, -1.0], [-1.0, 0.0]])
        assert CrossbarMapping.for_matrix(pos, 4).planes == 1
        assert CrossbarMapping.for_matrix(signed, 4).planes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossbarMapping(0, 4, 1)
        with pytest.raises(ValueError):
            CrossbarMapping(4, 4, 3)


class TestInSituMachine:
    def test_run_produces_consistent_result(self, problem):
        machine = InSituCimAnnealer(problem.to_ising(), seed=1)
        result = machine.run(400)
        # energies are consistent with the machine's stored (quantized) image
        check = machine.hw_model.energy(result.anneal.best_sigma)
        assert check == pytest.approx(result.anneal.best_energy, abs=1e-6)
        assert result.energy > 0
        assert result.time > 0

    def test_ledger_components(self, problem):
        result = InSituCimAnnealer(problem.to_ising(), seed=1).run(300)
        names = set(result.ledger.entries)
        assert {"adc", "logic", "bg_dac", "drivers", "program", "shift_add"} <= names
        assert result.ledger.entries["logic"].count == 300

    def test_annealing_energy_excludes_programming(self, problem):
        result = InSituCimAnnealer(problem.to_ising(), seed=1).run(300)
        assert result.annealing_energy == pytest.approx(
            result.energy - result.programming_energy
        )
        assert result.programming_energy > 0

    def test_adc_dominates_time(self, problem):
        result = InSituCimAnnealer(problem.to_ising(), seed=1).run(300)
        assert result.ledger.entries["adc"].time > 0.5 * result.time

    def test_cost_traces(self, problem):
        machine = InSituCimAnnealer(problem.to_ising(), record_cost_trace=True, seed=1)
        result = machine.run(200)
        assert result.energy_trace.shape == (200,)
        assert np.all(np.diff(result.energy_trace) > 0)
        assert result.energy_trace[-1] == pytest.approx(
            result.annealing_energy, rel=1e-6
        )

    def test_rejects_field_models(self):
        model = IsingModel.random(8, with_fields=True, seed=1)
        with pytest.raises(ValueError, match="ancilla"):
            InSituCimAnnealer(model)

    def test_device_backend_runs(self, problem):
        machine = InSituCimAnnealer(problem.to_ising(), backend="device", seed=1)
        result = machine.run(50)
        assert result.anneal.iterations == 50

    def test_per_iteration_cost_flat_in_n(self):
        """The O(n) claim: per-iteration sensing cost ≈ independent of n."""
        costs = []
        for n, m in ((32, 100), (64, 200)):
            prob = MaxCutProblem.random(n, m, seed=3)
            res = InSituCimAnnealer(prob.to_ising(), seed=1).run(200)
            adc = res.ledger.entries["adc"]
            costs.append(adc.energy / 200)
        assert costs[1] == pytest.approx(costs[0], rel=0.05)


class TestDirectEMachine:
    def test_requires_exponent_unit(self, problem):
        with pytest.raises(ValueError, match="exponent"):
            DirectECimAnnealer(problem.to_ising(), HardwareConfig.proposed())

    def test_ledger_has_exponent_entry(self, problem):
        machine = DirectECimAnnealer(
            problem.to_ising(), HardwareConfig.baseline_asic(), seed=1
        )
        result = machine.run(300)
        assert "exponent" in result.ledger.entries
        assert result.ledger.entries["exponent"].count == result.anneal.uphill_proposals

    def test_adc_cost_scales_with_n(self):
        """Direct-E pays the full array every iteration: cost ∝ n."""
        costs = []
        for n, m in ((32, 100), (64, 200)):
            prob = MaxCutProblem.random(n, m, seed=3)
            machine = DirectECimAnnealer(
                prob.to_ising(), HardwareConfig.baseline_asic(), seed=1
            )
            res = machine.run(100)
            costs.append(res.ledger.entries["adc"].energy / 100)
        assert costs[1] == pytest.approx(2 * costs[0], rel=0.05)

    def test_fpga_costs_more_than_asic(self, problem):
        model = problem.to_ising()
        fpga = DirectECimAnnealer(model, HardwareConfig.baseline_fpga(), seed=1).run(200)
        asic = DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=1).run(200)
        assert fpga.annealing_energy > asic.annealing_energy

    def test_reduction_ratios_in_paper_band(self):
        """At n=800 the paper reports ≈8× time and 401-732× energy gains."""
        prob = MaxCutProblem.random(800, 19176, seed=1000)
        model = prob.to_ising()
        iters = 300
        r_in = InSituCimAnnealer(model, seed=1).run(iters)
        r_fp = DirectECimAnnealer(model, HardwareConfig.baseline_fpga(), seed=1).run(iters)
        r_as = DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=1).run(iters)
        e_fp = r_fp.annealing_energy / r_in.annealing_energy
        e_as = r_as.annealing_energy / r_in.annealing_energy
        t_fp = r_fp.time / r_in.time
        assert 500 < e_fp < 1000
        assert 250 < e_as < 600
        assert 7.0 < t_fp < 9.0

    def test_cost_traces(self, problem):
        machine = DirectECimAnnealer(
            problem.to_ising(), HardwareConfig.baseline_asic(),
            record_cost_trace=True, seed=1,
        )
        result = machine.run(150)
        assert result.energy_trace.shape == (150,)
        assert np.all(np.diff(result.energy_trace) > 0)

    def test_summary_renders(self, problem):
        result = DirectECimAnnealer(
            problem.to_ising(), HardwareConfig.baseline_asic(), seed=1
        ).run(100)
        assert "CiM/ASIC" in result.summary()
