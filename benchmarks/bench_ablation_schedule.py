"""Ablation — schedule direction, best-σ tracking and proposal order.

Documents the two reproduction choices of DESIGN.md §2:

* the published V_BG walk (0.7 V → 0 V, factor 1 → 0) versus the
  Metropolis-consistent reverse walk and a constant factor;
* how much of the final answer comes from best-so-far tracking (the
  published flow ends permissive, so the final σ can drift off the best);
* scan versus random proposal order for both solver families.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.analysis import reference_cut
from repro.core import (
    FractionalFactor,
    InSituAnnealer,
    ReverseVbgSchedule,
    VbgStepSchedule,
    solve_maxcut,
)
from repro.ising import build_instance, paper_instance_suite
from repro.utils.tables import render_table


def _spec800():
    return [s for s in paper_instance_suite() if s.nodes == 800][0]


def test_schedule_direction_and_best_tracking(benchmark, capsys):
    """Published walk vs reverse walk vs constant factor; final σ vs best σ."""
    spec = _spec800()
    problem = build_instance(spec)
    model = problem.to_ising()
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)
    factor = FractionalFactor()

    def make_schedules():
        return {
            "published (V_BG 0.7→0, f 1→0)": VbgStepSchedule(
                spec.iterations, factor=factor
            ),
            "reverse (V_BG 0→0.7, f 0→1)": ReverseVbgSchedule(
                spec.iterations, factor=factor
            ),
        }

    def sweep():
        rows = []
        for label, schedule in make_schedules().items():
            best_cuts, final_cuts = [], []
            for s in range(runs):
                result = InSituAnnealer(
                    model,
                    schedule=type(schedule)(spec.iterations, factor=factor),
                    seed=40 + s,
                ).run(spec.iterations)
                best_cuts.append(problem.cut_from_energy(result.best_energy))
                final_cuts.append(problem.cut_from_energy(result.energy))
            rows.append(
                (
                    label,
                    float(np.mean(best_cuts) / ref),
                    float(np.mean(final_cuts) / ref),
                    float(np.mean(np.asarray(best_cuts) >= 0.9 * ref)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["schedule", "best-σ norm. cut", "final-σ norm. cut", "success (best)"],
        rows,
        title="Ablation — V_BG schedule direction and best-σ tracking "
        "(see DESIGN.md §2)",
    )
    emit(capsys, "ablation_schedule_direction", table)
    published = rows[0]
    # best-σ tracking matters under the published walk: the run ends in the
    # permissive regime, so the final configuration trails the best one.
    assert published[1] >= published[2]
    assert published[3] >= 0.5


def test_proposal_order(benchmark, capsys):
    """Scan vs random proposals for both solver families (fairness check)."""
    spec = _spec800()
    problem = build_instance(spec)
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)

    def sweep():
        rows = []
        for method in ("insitu", "sa"):
            for proposal in ("scan", "random"):
                cuts = [
                    solve_maxcut(
                        problem,
                        method,
                        spec.iterations,
                        seed=60 + s,
                        proposal=proposal,
                    ).best_cut
                    for s in range(runs)
                ]
                rows.append(
                    (
                        method,
                        proposal,
                        float(np.mean(cuts) / ref),
                        float(np.mean(np.asarray(cuts) >= 0.9 * ref)),
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["solver", "proposal", "mean norm. cut", "success"],
        rows,
        title="Ablation — proposal order (scan sweeps vs uniform random)",
    )
    emit(capsys, "ablation_proposal", table)
    by_key = {(r[0], r[1]): r for r in rows}
    # scan helps at sub-sweep budgets, for both solvers
    assert by_key[("insitu", "scan")][2] >= by_key[("insitu", "random")][2]
    # the headline separation survives like-for-like proposals
    assert by_key[("insitu", "scan")][2] > by_key[("sa", "scan")][2]
    assert by_key[("insitu", "random")][2] > by_key[("sa", "random")][2]
