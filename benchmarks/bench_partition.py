"""Partition-reordering acceptance bench: clustered 50k+-node SBM, partition vs RCM.

PR 3's reorder bench closes the *banded* case (RCM rediscovers a hidden
circulant band); this bench is the clustered case RCM cannot win: a
planted-partition / stochastic-block-model instance — ~100 communities
with dense random subgraphs, hub-routed sparse inter-community edges,
labels scrambled — has **no** banded ordering at all, so bandwidth is the
wrong objective and the multilevel min-cut partitioner
(:mod:`repro.core.partition`), which attacks the active-tile count
directly, must open it.  Asserted here:

* **≥5× fewer active tiles** with ``reorder="partition"`` than
  ``reorder="rcm"`` at the full 50k-node scale (both counts are exact by
  construction — ``Permutation.estimated_active_tiles`` is pinned to
  ``TiledCrossbar.num_tiles`` by the regression tests — and the RCM tile
  set, several GB of arrays, is never actually programmed, exactly like
  the identity side of the PR 3 bench).  A reduced-size smoke run asserts
  a ≥2× floor instead.
* **Bit-identical solver output** — twice over: at full scale the
  partition machine is compared against a machine using the *planted
  oracle* layout (communities laid out contiguously — the structure the
  partitioner has to rediscover); at a probe size where the identity
  ordering is still affordable, ``reorder="partition"`` vs
  ``reorder="none"`` is compared directly (±1 weights store exactly).
* **No densification** — ``SparseIsingModel.toarray`` and the dense
  ``matrix_hat`` assembly are trapped for the whole run, and tracemalloc
  peak stays within an O(nnz + active-tile cells) budget.

Scale knobs (environment variables):

* ``REPRO_PARTITION_BENCH_NODES``       — node count (default 51 200).
* ``REPRO_PARTITION_BENCH_COMMUNITIES`` — community count (default 100;
  must divide the node count).
* ``REPRO_PARTITION_BENCH_TILE``        — tile side (default 256).
* ``REPRO_PARTITION_BENCH_ITERS``       — annealing iterations (default 2 000).
* ``REPRO_PARTITION_PROBE_NODES``       — probe node count (default 3 072).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from benchmarks._common import emit, fmt_bytes as _fmt_bytes
from benchmarks._common import forbid_densification as _forbid_densification
from repro.arch import InSituCimAnnealer
from repro.core import (
    Permutation,
    count_active_tiles,
    partition_model,
    rcm_permutation,
    reorder_permutation,
)
from repro.ising import planted_partition_maxcut
from repro.ising.sparse import SparseIsingModel
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_PARTITION_BENCH_NODES", "51200"))
BENCH_COMMUNITIES = int(
    os.environ.get("REPRO_PARTITION_BENCH_COMMUNITIES", "100")
)
BENCH_TILE = int(os.environ.get("REPRO_PARTITION_BENCH_TILE", "256"))
BENCH_ITERS = int(os.environ.get("REPRO_PARTITION_BENCH_ITERS", "2000"))
PROBE_NODES = int(os.environ.get("REPRO_PARTITION_PROBE_NODES", "3072"))
PROBE_COMMUNITIES = 6
PROBE_TILE = 64
PROBE_ITERS = 500
SEED = 2026
INSTANCE_SEED = 0

#: The ≥5× acceptance floor engages at the full 50k-node protocol; the
#: reduced-size CI smoke still requires the partitioner to win clearly.
FULL_PROTOCOL_NODES = 50_000
FULL_FLOOR = 5.0
SMOKE_FLOOR = 2.0

#: Peak-memory budget coefficients (bytes): CSR storage plus the
#: partitioner's transients (coarsening levels, pair-count map, per-entry
#: sorts) per nonzero, and stored tile image + bit planes + construction
#: scratch per active-tile cell.
BYTES_PER_NNZ = 600
BYTES_PER_CELL = 40
BYTES_BASE = 64 * 1024 * 1024


def _oracle_layout(membership: np.ndarray) -> Permutation:
    """Block-contiguous layout of the *planted* communities.

    Sorting by ground-truth membership restores the hidden clustered
    layout — the mapper does not know it; the partitioner has to
    rediscover an equivalently good one.
    """
    order = np.argsort(membership, kind="stable")
    forward = np.empty(membership.size, dtype=np.intp)
    forward[order] = np.arange(membership.size, dtype=np.intp)
    return Permutation(forward, strategy="oracle")


def _run(machine: InSituCimAnnealer, iters: int):
    result = machine.run(iters)
    return (
        result.anneal.best_energy,
        result.anneal.energy,
        result.anneal.accepted,
        result.anneal.best_sigma,
    )


def test_partition_beats_rcm_on_clustered_instance(capsys):
    """Min-cut partitioning maps a 50k-node SBM onto ≥5× fewer tiles than RCM."""
    problem, membership = planted_partition_maxcut(
        BENCH_NODES, BENCH_COMMUNITIES, seed=INSTANCE_SEED
    )
    model = problem.to_ising(backend="sparse")
    assert isinstance(model, SparseIsingModel)
    n, nnz = model.num_spins, model.nnz

    # Layout costs, computed exactly from structure alone: programming the
    # RCM (or identity) tile set for real is the multi-GB case this pass
    # eliminates.
    identity_tiles = count_active_tiles(model, BENCH_TILE)
    rcm_perm = rcm_permutation(model)
    rcm_tiles = rcm_perm.estimated_active_tiles(BENCH_TILE)

    tracemalloc.start()
    with _forbid_densification():
        build_start = time.perf_counter()
        partitioning = partition_model(model, BENCH_TILE)
        machine = InSituCimAnnealer(
            model, tile_size=BENCH_TILE,
            permutation=partitioning.to_permutation(), seed=SEED,
        )
        build_time = time.perf_counter() - build_start
        solve_start = time.perf_counter()
        part_out = _run(machine, BENCH_ITERS)
        solve_time = time.perf_counter() - solve_start
        part_tiles = machine.crossbar.num_tiles
        part_cells = part_tiles * BENCH_TILE**2
        del machine
        # Same instance stored under the *planted oracle* layout: a
        # different tile grid must produce the bit-identical external
        # trajectory.
        oracle = _oracle_layout(membership)
        oracle_machine = InSituCimAnnealer(
            model, tile_size=BENCH_TILE, permutation=oracle, seed=SEED
        )
        oracle_out = _run(oracle_machine, BENCH_ITERS)
        oracle_tiles = oracle_machine.crossbar.num_tiles
        del oracle_machine
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    active_cells = part_cells + oracle_tiles * BENCH_TILE**2
    budget = BYTES_PER_NNZ * nnz + BYTES_PER_CELL * active_cells + BYTES_BASE
    best_cut = problem.cut_from_energy(part_out[0])
    floor = FULL_FLOOR if BENCH_NODES >= FULL_PROTOCOL_NODES else SMOKE_FLOOR

    table = render_table(
        ["quantity", "value"],
        [
            ("nodes / nnz / communities",
             f"{n} / {nnz} / {BENCH_COMMUNITIES}"),
            ("tile size / grid",
             f"{BENCH_TILE} / {-(-n // BENCH_TILE)}×{-(-n // BENCH_TILE)}"),
            ("tiles identity ordering", f"{identity_tiles}"),
            ("tiles rcm ordering", f"{rcm_tiles}"),
            ("tiles partition ordering", f"{part_tiles} "
             f"({rcm_tiles / max(part_tiles, 1):.1f}× fewer than rcm)"),
            ("tiles planted-oracle layout", f"{oracle_tiles}"),
            ("partition edge cut / balance",
             f"{partitioning.edge_cut:g} / {partitioning.balance:.3f}"),
            ("partition + program time", f"{build_time:.2f} s"),
            (f"solve time ({BENCH_ITERS} iters)", f"{solve_time:.2f} s"),
            ("best cut", f"{best_cut:g}"),
            ("partition ≡ oracle trajectory",
             f"{part_out[:3] == oracle_out[:3] and np.array_equal(part_out[3], oracle_out[3])}"),
            ("peak memory", _fmt_bytes(peak)),
            ("O(nnz + cells) budget", _fmt_bytes(budget)),
            ("dense (n, n) matrix alone", _fmt_bytes(8 * n * n)),
        ],
        title=(
            f"Min-cut partition reordering — SBM n={n}, "
            f"{BENCH_COMMUNITIES} communities, tile_size={BENCH_TILE}"
        ),
    )
    emit(capsys, "partition", table)

    # The acceptance ratio: min-cut blocks beat the bandwidth objective on
    # clustered structure (and both beat the identity scatter).
    assert part_tiles * floor <= rcm_tiles, (
        f"partition programs {part_tiles} tiles, rcm {rcm_tiles} "
        f"(floor {floor}×)"
    )
    assert part_tiles < identity_tiles
    # The partition is tile-aligned and its tile estimate is exact — the
    # machine programmed what was predicted.
    assert partitioning.is_tile_aligned
    assert part_tiles == partitioning.estimated_active_tiles()
    # Layout independence at scale: two different internal orderings, one
    # external fixed-seed trajectory (±1 weights store exactly).
    assert part_out[:3] == oracle_out[:3]
    assert np.array_equal(part_out[3], oracle_out[3])
    # Bounded memory: O(nnz + active-tile cells), no densification.
    assert peak <= budget, (
        f"peak {_fmt_bytes(peak)} exceeds budget {_fmt_bytes(budget)}"
    )
    if BENCH_NODES >= FULL_PROTOCOL_NODES:
        # Two machines' tile sets + the partitioner still undercut the
        # dense coupling matrix alone by a wide margin.
        assert peak < 8 * n * n / 3


def test_partition_probe_bit_identical_to_identity(capsys):
    """partition vs none, compared directly where none is affordable."""
    problem, _ = planted_partition_maxcut(
        PROBE_NODES, PROBE_COMMUNITIES, seed=3
    )
    model = problem.to_ising(backend="sparse")
    with _forbid_densification():
        plain = InSituCimAnnealer(model, tile_size=PROBE_TILE, seed=SEED)
        plain_out = _run(plain, PROBE_ITERS)
        part = InSituCimAnnealer(
            model, tile_size=PROBE_TILE, reorder="partition", seed=SEED
        )
        part_out = _run(part, PROBE_ITERS)
        # `auto` must deterministically settle the rcm-vs-partition race
        # by exact tile count (twice, same winner).
        first = reorder_permutation(model, "auto", tile_size=PROBE_TILE)
        second = reorder_permutation(model, "auto", tile_size=PROBE_TILE)
    assert first is not None and second is not None
    assert first.strategy == second.strategy
    assert np.array_equal(first.forward, second.forward)
    emit(
        capsys, "partition_probe",
        f"probe n={PROBE_NODES}, tile={PROBE_TILE}: identity "
        f"{plain.crossbar.num_tiles} tiles vs partition "
        f"{part.crossbar.num_tiles} tiles; auto picks {first.strategy!r}; "
        f"trajectories identical: {plain_out[:3] == part_out[:3]}",
    )
    assert part_out[:3] == plain_out[:3]
    assert np.array_equal(part_out[3], plain_out[3])
    assert part.crossbar.num_tiles * 2 <= plain.crossbar.num_tiles
