"""Rank-t replica batching: throughput vs the sequential multi-flip annealer.

The paper's protocol runs 100 independent annealing replicas per instance;
Algorithm 1 is defined for a constant flip-set size ``t = |F|``.  This
bench times the vectorised rank-t batch engine
(:class:`~repro.core.batch.BatchInSituAnnealer` with
``flips_per_iteration = t``) against sequential
:class:`~repro.core.annealer.InSituAnnealer` solves of the same moves, at
``t ∈ {1, 4, 16}`` on a degree-6 sparse instance, and asserts:

* **replica throughput** — at the full size (R = 100, 10k nodes) the batch
  engine sustains ≥ 5× the sequential replica·iterations/s at every ``t``
  (the sequential side is measured on a replica subsample — per-replica
  cost is constant — and extrapolated);
* **no densification** — the sparse rank-t kernels never materialise the
  dense ``(n, n)`` matrix (``toarray`` is trapped for the whole run) and
  peak memory stays within an explicit O(R·n + nnz + proposals) budget,
  orders of magnitude below any ``(R, n, t)``-shaped dense intermediate;
* **correctness at scale** — reported per-replica energies reproduce from
  the final configurations on the CSR model.

Scale knobs (environment variables):

* ``REPRO_MULTIFLIP_BENCH_NODES``    — node count (default 10 000).
* ``REPRO_MULTIFLIP_BENCH_REPLICAS`` — replica count R (default 100).
* ``REPRO_MULTIFLIP_BENCH_ITERS``    — iterations (default 2 000).

A second bench times the bit-packed ±1 backend against the float sparse
kernels on the same replica workload (knobs
``REPRO_PACKED_BENCH_NODES/REPLICAS/ITERS``, defaults 100 000 / 100 /
2 000) and asserts the trajectories are *bit-identical* while the packed
engine sustains ≥ 5× the sparse replica throughput at the full size
(≥ 2× on smoke-sized runs).
"""

from __future__ import annotations

import os
import time
import tracemalloc
from functools import partial

import numpy as np

from benchmarks._common import emit, forbid_densification
from repro.core import BatchInSituAnnealer, InSituAnnealer
from repro.ising import generate_random
from repro.ising.sparse import SparseIsingModel
from repro.utils.tables import render_table

#: This bench never builds a tiled machine, so only the coupling-matrix
#: densification trap applies.
_forbid_densification = partial(forbid_densification, trap_matrix_hat=False)

BENCH_NODES = int(os.environ.get("REPRO_MULTIFLIP_BENCH_NODES", "10000"))
BENCH_REPLICAS = int(os.environ.get("REPRO_MULTIFLIP_BENCH_REPLICAS", "100"))
BENCH_ITERS = int(os.environ.get("REPRO_MULTIFLIP_BENCH_ITERS", "2000"))

PACKED_NODES = int(os.environ.get("REPRO_PACKED_BENCH_NODES", "100000"))
PACKED_REPLICAS = int(os.environ.get("REPRO_PACKED_BENCH_REPLICAS", "100"))
PACKED_ITERS = int(os.environ.get("REPRO_PACKED_BENCH_ITERS", "2000"))
BENCH_DEGREE = 6
FLIP_SIZES = (1, 4, 16)
SEQUENTIAL_SAMPLE = 4
SEED = 2027

#: Peak-memory budget (bytes): replica state + cached fields (R·n), CSR
#: storage and transients (nnz), the precomputed proposal tensor
#: (iters·R·t) and interpreter/base overhead.  An (R, n, t) dense
#: intermediate at the full size is ~128 MB per temporary and busts this.
BYTES_PER_STATE = 64
BYTES_PER_NNZ = 200
BYTES_PER_PROPOSAL = 16
BYTES_BASE = 64 * 1024 * 1024


def test_rank_t_replica_throughput(capsys):
    """Batch rank-t replicas are ≥5× sequential throughput, no densification."""
    m = BENCH_NODES * BENCH_DEGREE // 2
    problem = generate_random(BENCH_NODES, m, weighted=True, seed=7)
    model = problem.to_ising(backend="sparse")
    assert isinstance(model, SparseIsingModel)
    n, nnz = model.num_spins, model.nnz
    R = BENCH_REPLICAS
    r_seq = min(SEQUENTIAL_SAMPLE, R)

    rows = []
    ratios = {}
    tracemalloc.start()
    with _forbid_densification():
        for t in FLIP_SIZES:
            start = time.perf_counter()
            batch = BatchInSituAnnealer(
                model, replicas=R, flips_per_iteration=t, seed=SEED
            ).run(BENCH_ITERS)
            batch_time = time.perf_counter() - start
            batch_tp = R * BENCH_ITERS / batch_time

            start = time.perf_counter()
            seq_results = [
                InSituAnnealer(
                    model, flips_per_iteration=t, seed=SEED + r
                ).run(BENCH_ITERS)
                for r in range(r_seq)
            ]
            seq_time = time.perf_counter() - start
            seq_tp = r_seq * BENCH_ITERS / seq_time

            ratios[t] = batch_tp / seq_tp
            rows.append(
                (
                    f"t={t}",
                    f"{batch_time:.2f} s",
                    f"{seq_time * R / r_seq:.2f} s",
                    f"{batch_tp / 1e3:.1f}k",
                    f"{seq_tp / 1e3:.1f}k",
                    f"{ratios[t]:.1f}x",
                )
            )

            # The engine really annealed: per-replica energies reproduce
            # from the final configurations (spot checked — full energies
            # are O(nnz) each).
            for r in (0, R // 2, R - 1):
                assert model.energy(batch.final_sigmas[r]) == (
                    batch.final_energies[r]
                )
            assert float(np.min(batch.best_energies)) <= min(
                res.best_energy for res in seq_results
            ) + abs(min(res.best_energy for res in seq_results)) * 0.5
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    max_t = max(FLIP_SIZES)
    budget = (
        BYTES_PER_STATE * R * n
        + BYTES_PER_NNZ * nnz
        + BYTES_PER_PROPOSAL * BENCH_ITERS * R * max_t
        + BYTES_BASE
    )

    table = render_table(
        ["flip set", "batch (R replicas)", "sequential (scaled)",
         "batch rep·it/s", "seq rep·it/s", "speedup"],
        rows,
        title=(
            f"Rank-t replica batching — n={n}, degree {BENCH_DEGREE}, "
            f"R={R}, {BENCH_ITERS} iters (sequential sampled at {r_seq})"
        ),
    )
    emit(capsys, "batch_multiflip", table)

    # Peak memory obeys the O(R·n + nnz + proposals) model — no (n, n)
    # densification (also trapped above) and no (R, n, t) intermediates.
    assert peak <= budget, (
        f"peak {peak / 1e6:.1f} MB exceeds O(R·n + nnz + proposals) budget "
        f"{budget / 1e6:.1f} MB — a dense intermediate has crept in"
    )
    # The acceptance criterion engages at the full protocol size; smaller
    # smoke runs still require the batch path to win outright.
    floor = 5.0 if R >= 100 else 1.0
    for t, ratio in ratios.items():
        assert ratio >= floor, (
            f"batch replica throughput only {ratio:.2f}x sequential at t={t} "
            f"(floor {floor}x)"
        )


def test_packed_replica_throughput(capsys):
    """The bit-packed backend beats the float sparse replica engine ≥5×.

    At the protocol scale (100k nodes, degree 6, R = 100) the float batch
    engine's time is dominated by full-state traffic — the
    ``best_sigma[improved] = sigma[improved]`` row copies and the float
    gathers around them — not by the O(degree) coupling kernels.  The
    packed backend stores replica spins as uint64 words (64× less state),
    so the same trajectory runs several times faster.  Because every
    kernel value is a small-integer multiple of the shared dyadic
    magnitude, the two runs must agree **bit for bit**, which is asserted
    on every reported array before any timing claim.
    """
    from repro.ising.packed import PackedIsingModel

    m = PACKED_NODES * BENCH_DEGREE // 2
    problem = generate_random(PACKED_NODES, m, weighted=True, seed=7)
    sparse = problem.to_ising(backend="sparse")
    assert isinstance(sparse, SparseIsingModel)
    packed = PackedIsingModel.from_sparse(sparse)
    R = PACKED_REPLICAS

    rows = []
    ratios = {}
    with _forbid_densification():
        for t in (1, 4):
            start = time.perf_counter()
            ref = BatchInSituAnnealer(
                sparse, replicas=R, flips_per_iteration=t, seed=SEED
            ).run(PACKED_ITERS)
            sparse_time = time.perf_counter() - start

            start = time.perf_counter()
            fast = BatchInSituAnnealer(
                packed, replicas=R, flips_per_iteration=t, seed=SEED
            ).run(PACKED_ITERS)
            packed_time = time.perf_counter() - start

            # Bit-identity first: identical floats, spins and acceptance
            # counters — the speedup is only meaningful for the *same*
            # trajectory.
            assert np.array_equal(ref.accepted, fast.accepted)
            assert np.array_equal(ref.best_energies, fast.best_energies)
            assert np.array_equal(ref.final_energies, fast.final_energies)
            assert np.array_equal(ref.best_sigmas, fast.best_sigmas)
            assert np.array_equal(ref.final_sigmas, fast.final_sigmas)

            ratios[t] = sparse_time / packed_time
            rows.append(
                (
                    f"t={t}",
                    f"{sparse_time:.2f} s",
                    f"{packed_time:.2f} s",
                    f"{R * PACKED_ITERS / sparse_time / 1e3:.1f}k",
                    f"{R * PACKED_ITERS / packed_time / 1e3:.1f}k",
                    f"{ratios[t]:.1f}x",
                )
            )

    table = render_table(
        ["flip set", "sparse", "packed", "sparse rep·it/s",
         "packed rep·it/s", "speedup"],
        rows,
        title=(
            f"Bit-packed replica engine — n={PACKED_NODES}, degree "
            f"{BENCH_DEGREE}, R={R}, {PACKED_ITERS} iters (bit-identical)"
        ),
    )
    emit(capsys, "packed_replicas", table)

    # ≥5× is the acceptance criterion at the full protocol size; CI smoke
    # runs (smaller n/R via the env knobs) still require a 2× win.
    floor = 5.0 if (PACKED_NODES >= 100_000 and R >= 100) else 2.0
    for t, ratio in ratios.items():
        assert ratio >= floor, (
            f"packed replica throughput only {ratio:.2f}x sparse at t={t} "
            f"(floor {floor}x)"
        )
