"""Fig 8 — energy comparison of the three CiM annealers.

(a) average annealing energy per run for the 800/1000/2000/3000-node groups
with the reduction multipliers (paper: 401-732× at n=800 rising to
1503-1716× at n=3000); (b) cumulative energy vs iteration count on a
1000-node instance (paper: steep linear growth for the baselines, nearly
flat for this work).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.analysis import PAPER_ENERGY_REDUCTIONS, hardware_table
from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
from repro.ising import MaxCutProblem, build_instance, paper_instance_suite
from repro.utils.tables import render_series
from repro.utils.units import MICRO, from_si


def test_fig8a_average_energy(hardware_results, benchmark, capsys):
    """Fig 8a: group-average energies and energy-reduction multipliers."""
    results, ratios = hardware_results
    table = hardware_table(results, ratios, "energy", PAPER_ENERGY_REDUCTIONS)
    emit(capsys, "fig8a_energy", table)

    # Benchmark kernel: in-situ machine simulation throughput (n = 200).
    prob = MaxCutProblem.random(200, 1200, seed=77)
    machine = InSituCimAnnealer(prob.to_ising(), seed=1)
    benchmark.pedantic(lambda: machine.run(100), rounds=3, iterations=1)

    # Shape assertions against the paper bands.
    for nodes, group in ratios.items():
        paper = PAPER_ENERGY_REDUCTIONS[nodes]
        for machine_label, vals in group.items():
            measured = vals["energy"]
            expected = paper[machine_label]
            assert 0.4 * expected < measured < 2.5 * expected, (
                nodes,
                machine_label,
                measured,
                expected,
            )
    # Reduction grows with problem size (the paper's headline trend).
    fpga = {n: ratios[n]["CiM/FPGA"]["energy"] for n in ratios}
    sizes = sorted(fpga)
    assert all(fpga[a] < fpga[b] for a, b in zip(sizes, sizes[1:]))


def test_fig8a_component_breakdown(benchmark, capsys):
    """Fig 8a stacked bars: where the energy goes (ADC vs e^x vs rest)."""
    from repro.utils.tables import render_table
    from repro.utils.units import format_energy

    spec = [s for s in paper_instance_suite() if s.nodes == 1000][0]
    problem = build_instance(spec)
    model = problem.to_ising()

    def run_machines():
        return {
            "This work": InSituCimAnnealer(model, seed=5).run(spec.iterations),
            "CiM/FPGA": DirectECimAnnealer(
                model, HardwareConfig.baseline_fpga(), seed=5
            ).run(spec.iterations),
            "CiM/ASIC": DirectECimAnnealer(
                model, HardwareConfig.baseline_asic(), seed=5
            ).run(spec.iterations),
        }

    runs = benchmark.pedantic(run_machines, rounds=1, iterations=1)
    rows = []
    for label, run in runs.items():
        anneal_total = run.annealing_energy
        adc = run.ledger.entries["adc"].energy
        exp = run.ledger.entries.get("exponent")
        exp_energy = exp.energy if exp else 0.0
        other = anneal_total - adc - exp_energy
        rows.append(
            (
                label,
                format_energy(anneal_total),
                f"{adc / anneal_total:.0%}",
                f"{exp_energy / anneal_total:.0%}",
                f"{other / anneal_total:.0%}",
            )
        )
    table = render_table(
        ["machine", "annealing energy", "ADC share", "e^x share", "other"],
        rows,
        title="Fig 8a breakdown — 1000-node run (paper: ADC and e^x dominate "
        "the baselines; the proposed design has no e^x at all)",
    )
    emit(capsys, "fig8a_breakdown", table)

    fpga = runs["CiM/FPGA"].ledger
    assert fpga.energy_share("exponent") > 0.2  # FPGA e^x is a major share
    asic = runs["CiM/ASIC"].ledger
    assert asic.energy_share("adc") > 0.8  # ASIC baseline is ADC-dominated
    ours = runs["This work"].ledger
    assert "exponent" not in ours.entries


def test_fig8b_energy_vs_iterations(benchmark, capsys):
    """Fig 8b: cumulative energy growth on a 1000-node instance."""
    spec = [s for s in paper_instance_suite() if s.nodes == 1000][0]
    problem = build_instance(spec)
    model = problem.to_ising()
    iterations = 1000

    def run_all_three():
        runs = {}
        runs["This work"] = InSituCimAnnealer(
            model, record_cost_trace=True, seed=3
        ).run(iterations)
        runs["CiM/FPGA"] = DirectECimAnnealer(
            model, HardwareConfig.baseline_fpga(), record_cost_trace=True, seed=3
        ).run(iterations)
        runs["CiM/ASIC"] = DirectECimAnnealer(
            model, HardwareConfig.baseline_asic(), record_cost_trace=True, seed=3
        ).run(iterations)
        return runs

    runs = benchmark.pedantic(run_all_three, rounds=1, iterations=1)
    checkpoints = list(range(0, iterations + 1, 100))[1:]
    series = {
        label: [from_si(run.energy_trace[c - 1], MICRO) for c in checkpoints]
        for label, run in runs.items()
    }
    table = render_series(
        "iteration",
        checkpoints,
        series,
        title="Fig 8b — cumulative energy (µJ) vs iterations, 1000-node "
        "instance (paper: baselines rise to ~1-2 µJ at 1000 iterations; "
        "this work stays orders of magnitude lower)",
        float_fmt="{:.5g}",
    )
    emit(capsys, "fig8b_energy_trend", table)

    fpga = np.asarray(runs["CiM/FPGA"].energy_trace)
    ours = np.asarray(runs["This work"].energy_trace)
    # Baselines grow linearly (constant per-iteration cost within 25 %).
    steps = np.diff(fpga[::100])
    assert steps.std() / steps.mean() < 0.25
    # Paper band: baseline total in the µJ range, ours far below.
    assert 0.5e-6 < fpga[-1] < 5e-6
    assert ours[-1] < fpga[-1] / 200
