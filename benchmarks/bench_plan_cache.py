"""Plan-cache acceptance bench: compile once, execute many, bit-identically.

Every ``solve_ising`` call on the tiled path re-pays the same setup: the
reorder/partition layout race, the ancilla fold, quantization and tile
programming.  On a scattered 50k-node instance under ``reorder="auto"``
that setup dominates a short anneal — the race scores *two* candidate
layouts before the machine programs a single tile.  The compile/execute
split moves all of it into :func:`repro.core.plan.compile_plan`, and the
fingerprint-keyed :class:`~repro.core.plan.PlanCache` skips it entirely
for byte-identical repeat instances.  Asserted here:

* **≥1.5× warm-over-cold throughput at every size** for a seed sweep of
  ``RUNS`` solves — cold pays setup per run (``solve_ising``), warm pays
  it once (``PlanCache.get_or_compile`` + ``plan.execute`` per seed).
  At the full 50 000-node protocol the floor rises to **≥3×**.
* **Exactly one cache miss** over the sweep (``RUNS - 1`` hits), and the
  hits hand back the *same* compiled artifact object — no re-layout, no
  re-programming.
* **Bit-identical results per seed** — warm ``plan.execute(seed=s)``
  reproduces cold ``solve_ising(seed=s)`` exactly (energies, acceptance
  counters and spin vectors), because behavioral-backend programming is
  draw-free and ±1 couplings store exactly.
* **No densification** — both sweeps run under the
  ``SparseIsingModel.toarray`` / dense ``matrix_hat`` trap.

Scale knobs (environment variables):

* ``REPRO_PLAN_BENCH_NODES`` — node count (default 50 000).
* ``REPRO_PLAN_BENCH_TILE``  — tile side (default 256).
* ``REPRO_PLAN_BENCH_ITERS`` — annealing iterations per run (default 400).
* ``REPRO_PLAN_BENCH_RUNS``  — seed-sweep length (default 4).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._common import emit
from benchmarks._common import forbid_densification as _forbid_densification
from repro.core import PlanCache, solve_ising
from repro.ising import scattered_circulant_maxcut
from repro.ising.sparse import SparseIsingModel
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_PLAN_BENCH_NODES", "50000"))
BENCH_TILE = int(os.environ.get("REPRO_PLAN_BENCH_TILE", "256"))
BENCH_ITERS = int(os.environ.get("REPRO_PLAN_BENCH_ITERS", "400"))
BENCH_RUNS = int(os.environ.get("REPRO_PLAN_BENCH_RUNS", "4"))
SEED = 2026

#: The acceptance floor: ≥3× once setup amortisation has a full-scale
#: layout race to amortise, ≥1.5× at any smoke size (CI runs reduced).
FULL_NODES = 50_000
SPEEDUP_FLOOR = 3.0 if BENCH_NODES >= FULL_NODES else 1.5


def _outputs(result):
    return (
        result.best_energy,
        result.energy,
        result.accepted,
        result.best_sigma,
    )


def test_plan_cache_amortises_setup(capsys):
    """A cached plan makes a seed sweep ≥1.5×/≥3× faster, bit-identically."""
    problem, _ = scattered_circulant_maxcut(BENCH_NODES, seed=99)
    model = problem.to_ising(backend="sparse")
    assert isinstance(model, SparseIsingModel)
    knobs = dict(method="insitu", tile_size=BENCH_TILE, reorder="auto")
    seeds = list(range(SEED, SEED + BENCH_RUNS))

    with _forbid_densification():
        # Cold: every run is a full solve_ising call — layout race,
        # quantization and tile programming re-paid per seed.
        cold_start = time.perf_counter()
        cold = [
            _outputs(solve_ising(model, iterations=BENCH_ITERS, seed=s, **knobs))
            for s in seeds
        ]
        cold_time = time.perf_counter() - cold_start

        # Warm: the sweep a serving layer runs — fingerprint lookup per
        # request, one compile on the first, executes thereafter.
        cache = PlanCache()
        warm_start = time.perf_counter()
        warm = []
        plans = []
        for s in seeds:
            plan = cache.get_or_compile(model, **knobs)
            plans.append(plan)
            warm.append(_outputs(plan.execute(BENCH_ITERS, seed=s)))
        warm_time = time.perf_counter() - warm_start

    speedup = cold_time / warm_time
    identical = all(
        c[:3] == w[:3] and np.array_equal(c[3], w[3])
        for c, w in zip(cold, warm)
    )
    best_cut = problem.cut_from_energy(min(c[0] for c in cold))
    stats = cache.stats()

    table = render_table(
        ["quantity", "value"],
        [
            ("nodes / nnz", f"{model.num_spins} / {model.nnz}"),
            ("tile size / runs", f"{BENCH_TILE} / {BENCH_RUNS}"),
            ("plan", ", ".join(
                f"{k}={v}" for k, v in plans[0].summary().items())),
            (f"cold sweep ({BENCH_ITERS} iters/run)", f"{cold_time:.2f} s"),
            ("warm sweep (1 compile)", f"{warm_time:.2f} s"),
            ("warm speedup", f"{speedup:.1f}× (floor {SPEEDUP_FLOOR}×)"),
            ("cache hits / misses",
             f"{stats['hits']} / {stats['misses']}"),
            ("best cut over sweep", f"{best_cut:g}"),
            ("warm ≡ cold per seed", f"{identical}"),
        ],
        title=(
            f"Plan cache — scattered n={BENCH_NODES}, "
            f"tile_size={BENCH_TILE}, reorder=auto, {BENCH_RUNS}-seed sweep"
        ),
    )
    emit(capsys, "plan_cache", table)

    # One compile served the whole sweep, and hits returned the same
    # artifact object — nothing was re-laid-out or re-programmed.
    assert stats["misses"] == 1 and stats["hits"] == BENCH_RUNS - 1, stats
    assert all(p is plans[0] for p in plans)
    # Plan reuse is invisible in the results: per-seed bit-identity.
    assert identical, "warm execute diverged from cold solve_ising"
    # The amortisation is real.
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm sweep only {speedup:.2f}× faster (floor {SPEEDUP_FLOOR}×): "
        f"cold {cold_time:.2f} s vs warm {warm_time:.2f} s"
    )
