"""Ablation — flip-set size ``t = |F|``.

The paper keeps |F| constant to make the incremental VMV O(n) but does not
publish the value.  This bench sweeps t and shows the trade the design
lives on: solution quality at the paper's tight 800-node budget versus the
per-iteration sensing cost (2·t·k conversions).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.analysis import reference_cut
from repro.arch import CrossbarMapping, HardwareConfig
from repro.circuits import SarAdc
from repro.core import solve_maxcut
from repro.ising import build_instance, paper_instance_suite
from repro.utils.tables import render_table
from repro.utils.units import PICO, from_si

FLIP_COUNTS = (1, 2, 4, 8, 16)


def test_flip_count_tradeoff(benchmark, capsys):
    """Quality (800-node budget) and cost vs t."""
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)
    adc = SarAdc()
    mapping = CrossbarMapping(spec.nodes, HardwareConfig.proposed().quantization_bits, 1)

    def sweep():
        rows = []
        for t in FLIP_COUNTS:
            cuts = [
                solve_maxcut(
                    problem,
                    "insitu",
                    spec.iterations,
                    seed=100 + s,
                    flips_per_iteration=t,
                ).best_cut
                for s in range(runs)
            ]
            conv = mapping.incremental_conversions(t)
            rows.append(
                (
                    t,
                    float(np.mean(cuts) / ref),
                    float(np.mean(np.asarray(cuts) >= 0.9 * ref)),
                    conv,
                    from_si(conv * adc.energy_per_conversion, PICO),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["t = |F|", "mean norm. cut", "success", "ADC conv/iter", "ADC pJ/iter"],
        rows,
        title="Ablation — flip-set size at the 700-iteration 800-node budget",
    )
    emit(capsys, "ablation_flips", table)

    by_t = {r[0]: r for r in rows}
    # Sensing cost is linear in t.
    assert by_t[16][3] == 16 * by_t[1][3]
    # Small flip sets stay in the success band at this budget.
    assert by_t[1][2] >= 0.5
    assert by_t[2][2] >= 0.5
    # Very large flip sets hurt quality at a fixed budget (random multi-spin
    # moves are almost never accepted once the solution is decent).
    assert by_t[16][1] < max(by_t[1][1], by_t[2][1])
