"""Fig 9 — time-cost comparison of the three CiM annealers.

(a) average annealing time per run and the ~8× reduction multipliers
(paper: 7.98-8.15× — the 8:1 ADC mux ratio, since sensing dominates);
(b) cumulative time vs iteration count on a 1000-node instance.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.analysis import PAPER_TIME_REDUCTIONS, hardware_table
from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
from repro.ising import MaxCutProblem, build_instance, paper_instance_suite
from repro.utils.tables import render_series
from repro.utils.units import MICRO, from_si


def test_fig9a_average_time(hardware_results, benchmark, capsys):
    """Fig 9a: group-average times and the ~8× reduction multipliers."""
    results, ratios = hardware_results
    table = hardware_table(results, ratios, "time", PAPER_TIME_REDUCTIONS)
    emit(capsys, "fig9a_time", table)

    # Benchmark kernel: direct-E baseline machine simulation throughput.
    prob = MaxCutProblem.random(200, 1200, seed=77)
    machine = DirectECimAnnealer(prob.to_ising(), HardwareConfig.baseline_asic(), seed=1)
    benchmark.pedantic(lambda: machine.run(100), rounds=3, iterations=1)

    for nodes, group in ratios.items():
        paper = PAPER_TIME_REDUCTIONS[nodes]
        for machine_label, vals in group.items():
            measured = vals["time"]
            expected = paper[machine_label]
            # the ~8× band: within ±15 % of the paper's multiplier
            assert 0.85 * expected < measured < 1.15 * expected, (
                nodes,
                machine_label,
                measured,
                expected,
            )


def test_fig9b_time_vs_iterations(benchmark, capsys):
    """Fig 9b: cumulative time growth on a 1000-node instance."""
    spec = [s for s in paper_instance_suite() if s.nodes == 1000][0]
    problem = build_instance(spec)
    model = problem.to_ising()
    iterations = 1000

    def run_all_three():
        runs = {}
        runs["This work"] = InSituCimAnnealer(
            model, record_cost_trace=True, seed=3
        ).run(iterations)
        runs["CiM/FPGA"] = DirectECimAnnealer(
            model, HardwareConfig.baseline_fpga(), record_cost_trace=True, seed=3
        ).run(iterations)
        runs["CiM/ASIC"] = DirectECimAnnealer(
            model, HardwareConfig.baseline_asic(), record_cost_trace=True, seed=3
        ).run(iterations)
        return runs

    runs = benchmark.pedantic(run_all_three, rounds=1, iterations=1)
    checkpoints = list(range(0, iterations + 1, 100))[1:]
    series = {
        label: [from_si(run.time_trace[c - 1], MICRO) for c in checkpoints]
        for label, run in runs.items()
    }
    table = render_series(
        "iteration",
        checkpoints,
        series,
        title="Fig 9b — cumulative time (µs) vs iterations, 1000-node "
        "instance (paper: both baselines overlap — ADC-dominated — and "
        "this work is ~8× below)",
        float_fmt="{:.5g}",
    )
    emit(capsys, "fig9b_time_trend", table)

    fpga = np.asarray(runs["CiM/FPGA"].time_trace)
    asic = np.asarray(runs["CiM/ASIC"].time_trace)
    ours = np.asarray(runs["This work"].time_trace)
    # The two baselines track each other (identical ADC time dominates).
    assert abs(fpga[-1] - asic[-1]) / asic[-1] < 0.05
    assert 6.0 < fpga[-1] / ours[-1] < 10.0
