"""Sparse-vs-dense coupling backend: wall-clock and peak-memory scaling.

The G-set-style instances the paper evaluates are overwhelmingly sparse
(average degree ≈ 6-50), yet the dense backend pays O(n²) to build, scan
and update the coupling matrix.  This bench solves one large random graph
(default: 10 000 nodes, average degree 6 — well past the paper's 3000-spin
ceiling) through the full end-to-end path (``to_ising`` + in-situ solve)
on both backends and reports the speedup and peak-memory reduction.

Because the ±1 edge weights make ``J = W/4`` exactly representable, the
two backends follow bit-identical trajectories — the bench asserts the
best energies match exactly, so the speedup is measured on provably
identical work.

Scale knobs (environment variables):

* ``REPRO_SPARSE_BENCH_NODES`` — node count (default 10 000).  The
  ≥5×/≥10× acceptance assertions only apply at the full 10k size.
* ``REPRO_SPARSE_BENCH_ITERS`` — annealing iterations (default 50 000).
"""

from __future__ import annotations

import os
import time
import tracemalloc

from benchmarks._common import emit
from repro.core import coupling_ops, solve_ising
from repro.ising import generate_random
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_SPARSE_BENCH_NODES", "10000"))
BENCH_DEGREE = 6
BENCH_ITERS = int(os.environ.get("REPRO_SPARSE_BENCH_ITERS", "50000"))
SEED = 2025


def _make_problem():
    m = BENCH_NODES * BENCH_DEGREE // 2
    return generate_random(
        BENCH_NODES, m, weighted=True, seed=99, name=f"bench-{BENCH_NODES}"
    )


def _timed_solve(problem, backend):
    """End-to-end wall clock: model construction + in-situ solve."""
    start = time.perf_counter()
    model = problem.to_ising(backend=backend)
    result = solve_ising(
        model, method="insitu", iterations=BENCH_ITERS, seed=SEED
    )
    elapsed = time.perf_counter() - start
    return elapsed, model, result


def _peak_memory(problem, backend):
    """tracemalloc peak over construction + a short solve.

    Peak memory is allocation-dominated (matrices, caches), not
    iteration-dominated, so a short solve measures the same footprint
    without tracemalloc's per-allocation overhead polluting the timing
    runs above.
    """
    tracemalloc.start()
    model = problem.to_ising(backend=backend)
    solve_ising(model, method="insitu", iterations=200, seed=SEED)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _fmt_bytes(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num) < 1024.0 or unit == "GB":
            return f"{num:.1f} {unit}"
        num /= 1024.0
    return f"{num:.1f} GB"


def test_sparse_backend_scaling(capsys):
    """≥5× wall-clock and ≥10× peak-memory win at 10k nodes, degree ≈ 6."""
    problem = _make_problem()

    sparse_time, sparse_model, sparse_result = _timed_solve(problem, "sparse")
    dense_time, dense_model, dense_result = _timed_solve(problem, "dense")
    # identical Hamiltonian + identical seeds → bit-identical trajectories
    assert sparse_result.best_energy == dense_result.best_energy
    assert sparse_result.accepted == dense_result.accepted

    sparse_store = coupling_ops(sparse_model).memory_bytes()
    dense_store = coupling_ops(dense_model).memory_bytes()
    del sparse_model, dense_model

    sparse_peak = _peak_memory(problem, "sparse")
    dense_peak = _peak_memory(problem, "dense")

    speedup = dense_time / sparse_time
    peak_ratio = dense_peak / sparse_peak
    store_ratio = dense_store / sparse_store

    table = render_table(
        ["backend", "build+solve time", "peak memory", "coupling storage"],
        [
            ("dense", f"{dense_time:.2f} s", _fmt_bytes(dense_peak),
             _fmt_bytes(dense_store)),
            ("sparse", f"{sparse_time:.2f} s", _fmt_bytes(sparse_peak),
             _fmt_bytes(sparse_store)),
        ],
        title=(
            f"Sparse backend scaling — n={BENCH_NODES}, "
            f"avg degree {BENCH_DEGREE}, {BENCH_ITERS} in-situ iterations"
        ),
    )
    footer = (
        f"\nspeedup {speedup:.1f}x · peak-memory reduction {peak_ratio:.0f}x "
        f"· coupling-storage reduction {store_ratio:.0f}x "
        f"(best energy identical across backends: "
        f"{sparse_result.best_energy:g})"
    )
    emit(capsys, "sparse_scaling", table + footer)

    assert peak_ratio > 1.0 and speedup > 1.0
    if BENCH_NODES >= 10_000:
        assert speedup >= 5.0, f"expected ≥5x speedup, got {speedup:.2f}x"
        assert peak_ratio >= 10.0, (
            f"expected ≥10x peak-memory reduction, got {peak_ratio:.1f}x"
        )
