"""Ablation — device variability robustness.

The CiM-annealer argument (Sec. 1-2): unlike dynamical-system Ising
machines, moderate device variation only perturbs the *sensed* energy, so
annealing keeps working.  Sweeps the frozen V_TH spread on the full
device-accurate backend (small array) and the cycle-to-cycle read noise on
the behavioural backend at the 800-node scale.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.arch import InSituCimAnnealer
from repro.devices import VariationModel
from repro.ising import MaxCutProblem, build_instance, paper_instance_suite
from repro.utils.tables import render_table

VTH_SIGMAS = (0.0, 0.025, 0.05, 0.1)
NOISE_SIGMAS = (0.0, 0.02, 0.05, 0.1)


def test_vth_spread_device_backend(benchmark, capsys):
    """Frozen V_TH spread on the device-accurate crossbar (16-node array)."""
    problem = MaxCutProblem.random(16, 48, seed=31)
    model = problem.to_ising()
    _, e_min = model.brute_force_minimum()
    optimum = problem.cut_from_energy(e_min)
    runs = max(3, quality_runs() // 3)

    def sweep():
        rows = []
        for sigma in VTH_SIGMAS:
            cuts = []
            for s in range(runs):
                machine = InSituCimAnnealer(
                    model,
                    backend="device",
                    variation=VariationModel(vth_sigma=sigma),
                    seed=900 + s,
                )
                result = machine.run(800)
                cuts.append(problem.cut_value(result.anneal.best_sigma))
            rows.append(
                (
                    f"{sigma * 1e3:.0f} mV",
                    float(np.mean(cuts) / optimum),
                    float(np.mean(np.asarray(cuts) >= 0.9 * optimum)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["V_TH σ", "mean norm. cut", "success"],
        rows,
        title="Ablation — device-to-device V_TH spread (device backend, n=16)",
    )
    emit(capsys, "ablation_variability_vth", table)
    ideal = rows[0]
    moderate = rows[1]
    assert ideal[2] >= 0.9
    # the robustness claim: 25 mV spread barely moves the success rate
    assert moderate[2] >= ideal[2] - 0.2


def test_read_noise_behavioral_backend(benchmark, capsys):
    """Cycle-to-cycle read noise at the 800-node paper budget."""
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    model = problem.to_ising()
    from repro.analysis import reference_cut

    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 3)

    def sweep():
        rows = []
        for sigma in NOISE_SIGMAS:
            cuts = []
            for s in range(runs):
                machine = InSituCimAnnealer(
                    model,
                    variation=VariationModel(read_noise_sigma=sigma),
                    seed=950 + s,
                )
                result = machine.run(spec.iterations)
                cuts.append(problem.cut_value(result.anneal.best_sigma))
            rows.append(
                (
                    f"{sigma:.0%}",
                    float(np.mean(cuts) / ref),
                    float(np.mean(np.asarray(cuts) >= 0.9 * ref)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["read noise σ", "mean norm. cut", "success"],
        rows,
        title="Ablation — cycle-to-cycle read noise (behavioural, n=800)",
    )
    emit(capsys, "ablation_variability_noise", table)
    # annealing tolerates a few percent of sensing noise
    assert rows[1][1] >= rows[0][1] - 0.03
