"""Table 1 — summary of COP solvers.

Regenerates the paper's closing table: literature rows (constants from the
paper) plus the measured row for this work — 3000-node capacity, O(n)
complexity, no ``e^x``, and the measured time/energy-to-solution on a
3000-node instance (paper: 4.6 ms / 0.9 µJ / 98 %).
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.analysis import cost_to_solution, table1
from repro.arch import InSituCimAnnealer
from repro.ising import build_instance, paper_instance_suite
from repro.utils.tables import render_table
from repro.utils.units import format_energy, format_time

PAPER_TTS = 4.6e-3
PAPER_ETS = 0.9e-6
PAPER_SUCCESS_3000 = 0.98


def test_table1_solver_summary(quality_results, benchmark, capsys):
    """Table 1 with the measured this-work row (3000-node instance)."""
    spec = [s for s in paper_instance_suite() if s.nodes == 3000][0]
    problem = build_instance(spec)
    model = problem.to_ising()

    def run_instrumented():
        machine = InSituCimAnnealer(
            model, record_cost_trace=True, record_trace=True, seed=17
        )
        return machine.run(spec.iterations)

    result = benchmark.pedantic(run_instrumented, rounds=1, iterations=1)

    # Success target: 90 % of the exact optimum (bipartite torus → 6000).
    target_cut = 0.9 * 6000.0
    target_energy = problem.energy_from_cut(target_cut)
    tts = cost_to_solution(result.anneal.best_trace, result.time_trace, target_energy)
    ets = cost_to_solution(
        result.anneal.best_trace, result.energy_trace, target_energy
    )
    assert tts is not None and ets is not None, "target never reached"

    success_3000 = quality_results[3000]["This work"].success
    table = table1(
        {
            "problem_size": 3000,
            "time_to_solution": tts,
            "energy_to_solution": ets,
            "success_rate": success_3000,
        }
    )
    comparison = render_table(
        ["quantity", "paper", "measured"],
        [
            ("time to solution", format_time(PAPER_TTS), format_time(tts)),
            ("energy to solution", format_energy(PAPER_ETS), format_energy(ets)),
            ("success rate (3000)", f"{PAPER_SUCCESS_3000:.0%}", f"{success_3000:.0%}"),
            ("full-run time", format_time(PAPER_TTS), format_time(result.time)),
            ("full-run energy", "—", format_energy(result.annealing_energy)),
        ],
        title="Table 1 'This work' row — paper vs measured",
    )
    emit(capsys, "table1_summary", table + "\n\n" + comparison)

    # Order-of-magnitude agreement with the paper's reported figures.
    assert 0.1 * PAPER_TTS < tts < 10 * PAPER_TTS
    assert 0.05 * PAPER_ETS < ets < 10 * PAPER_ETS
    assert success_3000 >= 0.9


def test_table1_complexity_claims(benchmark, capsys):
    """The two structural claims of the row: O(n) terms and no e^x."""
    from repro.core import num_product_terms
    from repro.ising import MaxCutProblem

    rows = []
    for n in (800, 1000, 2000, 3000):
        direct, inc = num_product_terms(n, 1)
        rows.append((n, direct, inc, f"{direct / inc:.0f}x"))
    table = render_table(
        ["n", "direct-E terms (O(n²))", "incremental-E terms (O(n))", "reduction"],
        rows,
        title="Table 1 — VMV product-term counts per iteration",
    )
    emit(capsys, "table1_complexity", table)

    # e^x count: measured zero for this work on a live run.
    prob = MaxCutProblem.random(100, 400, seed=5)
    machine = InSituCimAnnealer(prob.to_ising(), seed=2)
    result = benchmark.pedantic(lambda: machine.run(200), rounds=1, iterations=1)
    assert result.anneal.exponent_evaluations == 0
    assert "exponent" not in result.ledger.entries
