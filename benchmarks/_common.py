"""Shared plumbing for the benchmark harness.

Scale control (environment variables):

* ``REPRO_FULL=1`` — run the paper's full protocol (all 30 instances,
  100 quality runs per instance).  Expect hours.
* ``REPRO_RUNS=<int>`` — override the Monte-Carlo run count per instance.
* ``REPRO_HW_RUNS=<int>`` — override runs per instance for the
  hardware-cost experiments (cost spread across runs is tiny, default 1).

Every bench prints its regenerated table/figure both to the live terminal
(`emit`) and into ``benchmarks/results/<name>.txt`` so the artifacts survive
output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.utils.guards import forbid_densification

__all__ = [
    "RESULTS_DIR",
    "emit",
    "fmt_bytes",
    "forbid_densification",
    "full_protocol",
    "hardware_runs",
    "hardware_suite",
    "quality_runs",
    "quality_suite",
]

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def fmt_bytes(num: float) -> str:
    """Human-readable byte count (for the bench tables)."""
    for unit in ("B", "KB", "MB"):
        if abs(num) < 1024.0:
            return f"{num:.1f} {unit}"
        num /= 1024.0
    return f"{num:.1f} GB"


def full_protocol() -> bool:
    """Whether the paper's full evaluation protocol was requested."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def quality_runs() -> int:
    """Monte-Carlo runs per instance for solution-quality experiments."""
    if "REPRO_RUNS" in os.environ:
        return max(1, int(os.environ["REPRO_RUNS"]))
    return 100 if full_protocol() else 10


def hardware_runs() -> int:
    """Runs per instance for the instrumented-machine experiments."""
    if "REPRO_HW_RUNS" in os.environ:
        return max(1, int(os.environ["REPRO_HW_RUNS"]))
    return 10 if full_protocol() else 1


def quality_suite():
    """Instance specs for quality experiments (full suite either way —
    instance counts are the paper's; run counts carry the scaling)."""
    from repro.ising import paper_instance_suite

    return paper_instance_suite()


def hardware_suite():
    """Instance specs for the cost experiments.

    Cost is nearly deterministic across instances of a group (it depends on
    n, k and the acceptance trajectory), so the reduced protocol uses the
    first instance per group; ``REPRO_FULL=1`` uses all 30.
    """
    from repro.ising import paper_instance_suite, suite_by_size

    suite = paper_instance_suite()
    if full_protocol():
        return suite
    groups = suite_by_size(suite)
    return [group[0] for group in groups.values()]


def emit(capsys, name: str, text: str) -> None:
    """Print ``text`` to the real terminal and persist it under results/."""
    with capsys.disabled():
        print()
        print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
