"""Ablation — crossbar quantization width ``k``.

Each matrix element occupies a 1×k sub-array (Sec. 3.3); k trades array
width, per-iteration conversions and stored-image fidelity.  Unit-weight
Max-Cut matrices hold a single magnitude, so even small k stores them
exactly — weighted instances expose the fidelity loss.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.arch import HardwareConfig, InSituCimAnnealer
from repro.circuits import MatrixQuantizer
from repro.ising import generate_random
from repro.utils.rng import ensure_rng
from repro.utils.tables import render_table

BIT_WIDTHS = (1, 2, 4, 6, 8)


def test_quantization_fidelity(benchmark, capsys):
    """Reconstruction error vs k for a Gaussian-weighted coupling matrix."""
    rng = ensure_rng(11)
    W = rng.normal(0, 1, (64, 64))
    W = (W + W.T) / 2
    np.fill_diagonal(W, 0)

    def sweep():
        rows = []
        for bits in BIT_WIDTHS:
            q = MatrixQuantizer(bits)
            err = q.quantization_error(W)
            rows.append((bits, 64 * bits * 2, err, err / np.abs(W).max()))
        return rows

    rows = benchmark(sweep)
    table = render_table(
        ["k (bits)", "columns", "max |Ĵ - J|", "relative"],
        rows,
        title="Ablation — stored-image fidelity vs quantization width",
    )
    emit(capsys, "ablation_quantization_fidelity", table)
    errors = [r[2] for r in rows]
    assert all(b < a for a, b in zip(errors, errors[1:]))
    # halving LSB per extra bit
    assert errors[2] < errors[1] / 2


def test_quantization_solution_quality(benchmark, capsys):
    """End-to-end machine quality vs k on a ±1-weighted instance."""
    problem = generate_random(200, 2000, weighted=True, seed=21)
    model = problem.to_ising()
    runs = max(2, quality_runs() // 4)
    iterations = 2000

    # high-precision reference from the un-quantized software solver
    from repro.core import solve_maxcut

    ref = max(
        solve_maxcut(problem, "insitu", 30_000, seed=s).best_cut for s in range(2)
    )

    def sweep():
        rows = []
        for bits in BIT_WIDTHS:
            cfg = HardwareConfig.proposed(quantization_bits=bits)
            cuts = []
            for s in range(runs):
                machine = InSituCimAnnealer(model, config=cfg, seed=700 + s)
                result = machine.run(iterations)
                # evaluate the found configuration on the TRUE weights
                cuts.append(problem.cut_value(result.anneal.best_sigma))
            rows.append((bits, float(np.mean(cuts) / ref)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["k (bits)", "mean norm. cut (true weights)"],
        rows,
        title="Ablation — solution quality vs quantization width "
        "(±1-weighted 200-node instance)",
    )
    emit(capsys, "ablation_quantization_quality", table)
    by_bits = dict(rows)
    # ±1 weights are representable from k=1 up: quality must be flat-ish,
    # and the paper's k=4 choice must sit in the good band.
    assert by_bits[4] > 0.85
    assert by_bits[8] > 0.85
