"""``SparseCouplingOps.batch_local_fields``: loop vs segmented reduction at R=100.

The replica batch engine computes the initial local fields ``g = σ J`` for
all R replicas at once.  The ROADMAP item asked for the per-replica
``_matvec`` loop to be replaced by a single segmented reduction over the
``(R, nnz)`` gather; both kernels now exist
(``batch_local_fields_reduction`` is the one-shot reduction) and this bench
times them head to head on the same model at R=100.

Measured outcome (and why the dispatch keeps the loop): the looped kernel's
working set — one ``n``-vector plus the shared CSR arrays — stays cache
resident, while the reduction materialises and re-reads an ``(R, nnz)``
float64 intermediate (~48 MB at R=100 / n=10k).  The loop wins 3-7× at
every size measured, so ``batch_local_fields`` dispatches to it and the
bench asserts the chosen default is never slower.  Results are asserted
bit-identical (±1/4 dyadic couplings → every partial sum is exact).

Scale knobs (environment variables):

* ``REPRO_BATCH_BENCH_NODES``    — node count (default 10 000).
* ``REPRO_BATCH_BENCH_REPLICAS`` — replica count R (default 100).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._common import emit
from repro.core.coupling import coupling_ops
from repro.ising import generate_random
from repro.utils.rng import ensure_rng
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_BATCH_BENCH_NODES", "10000"))
BENCH_REPLICAS = int(os.environ.get("REPRO_BATCH_BENCH_REPLICAS", "100"))
BENCH_DEGREE = 6
REPEATS = 5


def _best_of(fn, *args):
    best = float("inf")
    out = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, out


def test_batch_local_fields_kernels(capsys):
    """The dispatched kernel is the fastest one, bit-identical to the other."""
    m = BENCH_NODES * BENCH_DEGREE // 2
    problem = generate_random(BENCH_NODES, m, weighted=True, seed=7)
    ops = coupling_ops(problem.to_ising(backend="sparse"))
    rng = ensure_rng(11)
    sigma = rng.choice(np.array([-1.0, 1.0]), size=(BENCH_REPLICAS, BENCH_NODES))

    default_time, g_default = _best_of(ops.batch_local_fields, sigma)
    reduction_time, g_reduction = _best_of(ops.batch_local_fields_reduction, sigma)
    ratio = reduction_time / default_time

    table = render_table(
        ["kernel", "best of 5", "vs default"],
        [
            ("per-replica bincount (default)", f"{default_time * 1e3:.2f} ms",
             "1.0x"),
            ("segmented (R, nnz) reduction", f"{reduction_time * 1e3:.2f} ms",
             f"{ratio:.1f}x slower" if ratio >= 1 else f"{1 / ratio:.1f}x faster"),
        ],
        title=(
            f"batch_local_fields — n={BENCH_NODES}, degree {BENCH_DEGREE}, "
            f"R={BENCH_REPLICAS}"
        ),
    )
    emit(capsys, "batch_fields", table)

    # ±1/4 couplings: dyadic partial sums, so both orders are exact.
    assert np.array_equal(g_default, g_reduction)
    # batch_update_fields aliases g via reshape(-1): both kernels must
    # return C-contiguous arrays or the in-place update silently copies.
    assert g_default.flags["C_CONTIGUOUS"]
    assert g_reduction.flags["C_CONTIGUOUS"]
    # The dispatched default must be the faster kernel (10% timing slack).
    assert default_time <= reduction_time * 1.1, (
        f"default kernel is slower ({default_time * 1e3:.2f} ms vs "
        f"{reduction_time * 1e3:.2f} ms) — switch the dispatch"
    )
