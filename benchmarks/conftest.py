"""Session-scoped experiment fixtures shared by the evaluation benches.

The Fig 8, Fig 9 and Table 1 benches all consume the same instrumented
machine runs, and Fig 10 / Table 1 share the quality protocol — running each
protocol once per session keeps the default bench suite fast.
"""

from __future__ import annotations

import pytest

from benchmarks._common import hardware_runs, hardware_suite, quality_runs, quality_suite
from repro.analysis import (
    reduction_ratios,
    run_hardware_experiment,
    run_quality_experiment,
)


@pytest.fixture(scope="session")
def hardware_results():
    """Instrumented machine runs for Fig 8a/9a (+ reduction ratios)."""
    results = run_hardware_experiment(
        hardware_suite(), runs_per_instance=hardware_runs(), seed=42
    )
    return results, reduction_ratios(results)


@pytest.fixture(scope="session")
def quality_results():
    """Monte-Carlo quality runs for Fig 10 / Table 1."""
    return run_quality_experiment(
        quality_suite(), runs_per_instance=quality_runs(), seed=7
    )
