"""Tiled-crossbar sharding at 100k+ nodes: the O(nnz + active-tile cells) bench.

The paper caps each annealer at one physical crossbar; the tiled machine
shards the coupling matrix over a sparse grid of ``tile_size``-row arrays,
instantiating tiles only for blocks that contain nonzeros.  This bench
solves a 100 000-node, degree-6 Max-Cut instance end to end through
``InSituCimAnnealer(tile_size=...)`` on the CSR backend and asserts:

* **no densification** — the dense ``(n, n)`` coupling matrix (80 GB at
  100k nodes) is never materialised: ``SparseIsingModel.toarray`` and the
  tiled ``matrix_hat`` assembly are trapped for the whole run;
* **sparse tile registry** — the occupied-tile count is a tiny fraction of
  the dense ``grid²`` grid (the instance is a degree-6 circulant, the
  banded ordering a real mapper would produce);
* **bounded memory** — tracemalloc peak stays within an explicit
  O(nnz + active-tile cells) budget, orders of magnitude below the dense
  matrix alone.

Scale knobs (environment variables):

* ``REPRO_TILED_BENCH_NODES`` — node count (default 100 000).
* ``REPRO_TILED_BENCH_TILE``  — tile side ``s`` (default 256).
* ``REPRO_TILED_BENCH_ITERS`` — annealing iterations (default 2 000).
"""

from __future__ import annotations

import os
import time
import tracemalloc

from benchmarks._common import emit, fmt_bytes as _fmt_bytes
from benchmarks._common import forbid_densification as _forbid_densification
from repro.arch import InSituCimAnnealer
from repro.ising import circulant_maxcut
from repro.ising.sparse import SparseIsingModel
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_TILED_BENCH_NODES", "100000"))
BENCH_TILE = int(os.environ.get("REPRO_TILED_BENCH_TILE", "256"))
BENCH_ITERS = int(os.environ.get("REPRO_TILED_BENCH_ITERS", "2000"))
BENCH_DEGREE = 6
SEED = 2026

#: Peak-memory budget coefficients (bytes): CSR storage and its transient
#: copies (model + stored image + block partition) per nonzero, and stored
#: tile image + bit planes + construction scratch per active-tile cell.
BYTES_PER_NNZ = 200
BYTES_PER_CELL = 32
BYTES_BASE = 64 * 1024 * 1024


def test_tiled_sharding_scaling(capsys):
    """100k-node degree-6 instance solves tiled with O(nnz + cells) memory."""
    build_start = time.perf_counter()
    # The banded ordering is what an array mapper produces for a local
    # graph; it keeps the occupied tile set at ~3 block diagonals instead
    # of the ~grid² blocks a scattered ordering would touch.
    problem = circulant_maxcut(BENCH_NODES, seed=99)
    model = problem.to_ising(backend="sparse")
    model_time = time.perf_counter() - build_start
    assert isinstance(model, SparseIsingModel)
    n, nnz = model.num_spins, model.nnz

    tracemalloc.start()
    with _forbid_densification():
        machine_start = time.perf_counter()
        machine = InSituCimAnnealer(
            model, tile_size=BENCH_TILE, seed=SEED
        )
        program_time = time.perf_counter() - machine_start
        solve_start = time.perf_counter()
        result = machine.run(BENCH_ITERS)
        solve_time = time.perf_counter() - solve_start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    crossbar = machine.crossbar
    active_cells = crossbar.num_tiles * BENCH_TILE**2
    budget = BYTES_PER_NNZ * nnz + BYTES_PER_CELL * active_cells + BYTES_BASE
    dense_bytes = 8 * n * n
    best_cut = problem.cut_from_energy(result.anneal.best_energy)
    prog = crossbar.programming_summary()

    table = render_table(
        ["quantity", "value"],
        [
            ("nodes / nnz", f"{n} / {nnz}"),
            ("tile size / grid", f"{BENCH_TILE} / {crossbar.grid}×{crossbar.grid}"),
            ("tiles programmed", f"{crossbar.num_tiles} of {crossbar.grid_tiles} "
             f"({crossbar.occupancy:.2%} of a dense grid)"),
            ("cells programmed", f"{prog['cells']:.3g}"),
            ("build + program time", f"{model_time + program_time:.2f} s"),
            (f"solve time ({BENCH_ITERS} iters)", f"{solve_time:.2f} s"),
            ("best cut", f"{best_cut:g}"),
            ("peak memory", _fmt_bytes(peak)),
            ("O(nnz + cells) budget", _fmt_bytes(budget)),
            ("dense (n, n) matrix alone", _fmt_bytes(dense_bytes)),
        ],
        title=(
            f"Tiled crossbar sharding — n={n}, degree {BENCH_DEGREE}, "
            f"tile_size={BENCH_TILE}"
        ),
    )
    emit(capsys, "tiled_scaling", table)

    # The machine really solved on the sharded array: the reported best
    # configuration reproduces the reported energy on the stored image.
    assert result.anneal.best_energy < 0.0
    assert machine.hw_model.energy(result.anneal.best_sigma) == (
        result.anneal.best_energy
    )
    # Sparse registry: a dense grid would program every grid² slot.
    assert crossbar.num_tiles <= 4 * crossbar.grid
    # Peak memory obeys the O(nnz + active-tile cells) model and is far
    # below the dense matrix the old path would have allocated.
    assert peak <= budget, (
        f"peak {_fmt_bytes(peak)} exceeds O(nnz + cells) budget "
        f"{_fmt_bytes(budget)}"
    )
    if BENCH_NODES >= 100_000:
        assert peak < dense_bytes / 20
