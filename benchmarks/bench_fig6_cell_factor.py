"""Fig 6a/6b/6c — the DG FeFET cell as the fractional-factor engine.

Regenerates: the four-input product behaviour (Fig 6a), the ``I_SL-V_BG``
transfer of a '1'/'0' cell (Fig 6b), and the match between the normalised
SL current and the analytic fractional factor ``f(T)`` with the published
parameters (Fig 6c), including a re-fit of (a, b, c, d) from the device
curve.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.core import FractionalFactor, VbgEncoder, fit_fractional_factor
from repro.devices import VBG_MAX, DGFeFET
from repro.utils.tables import render_series, render_table


def make_cell(bit=1):
    cell = DGFeFET()
    cell.program_bit(bit)
    return cell


def test_fig6a_four_input_product(benchmark, capsys):
    """Fig 6a: I_SL = x · G · y · z — all gating combinations."""
    cells = {g: make_cell(g) for g in (1, 0)}

    def evaluate_all_combinations():
        out = []
        for g in (1, 0):
            for x in (1, 0):
                for y in (1, 0):
                    out.append((x, g, y, float(cells[g].sl_current(x, y, VBG_MAX))))
        return out

    combos = benchmark(evaluate_all_combinations)
    rows = [
        (x, g, y, f"{VBG_MAX:.1f} V", f"{i:.3e} A") for x, g, y, i in combos
    ]
    table = render_table(
        ["x (FG)", "G (stored)", "y (DL)", "z (BG)", "I_SL"],
        rows,
        title="Fig 6a — single DG FeFET four-input product I_SL = x·G·y·z",
    )
    emit(capsys, "fig6a_four_input_product", table)


def test_fig6b_isl_vbg(benchmark, capsys):
    """Fig 6b: I_SL vs V_BG ≈ 0 → 10 µA for a '1' cell, ~0 for a '0' cell."""
    on, off = make_cell(1), make_cell(0)
    vbg = np.linspace(0.1, 0.7, 13)
    i_on = benchmark(lambda: on.isl_vbg(vbg))
    i_off = off.isl_vbg(vbg)
    table = render_series(
        "V_BG (V)",
        [float(v) for v in vbg],
        {
            "I_SL store '1' (µA)": (i_on * 1e6).tolist(),
            "I_SL store '0' (µA)": (i_off * 1e6).tolist(),
        },
        title="Fig 6b — I_SL-V_BG at V_FG=1 V, V_DL=1 V "
        "(paper: 0 → ~10 µA over 0.1..0.7 V for '1'; ~0 for '0')",
        float_fmt="{:.4g}",
    )
    emit(capsys, "fig6b_isl_vbg", table)
    assert 5.0 < float(i_on[-1] * 1e6) < 20.0
    assert float(i_off[-1]) < 1e-9


def test_fig6c_factor_match(benchmark, capsys):
    """Fig 6c: normalised I_SL approximates f(T) = 1/(−0.006T+5) − 0.2."""
    cell = make_cell(1)
    factor = FractionalFactor()
    temps = np.linspace(0.0, factor.t_max, 15)
    vbg = factor.vbg_for_temperature(temps)

    def evaluate_match():
        device = cell.normalized_factor(vbg)
        analytic = factor.value(temps)
        return device, analytic

    device, analytic = benchmark(evaluate_match)
    encoder = VbgEncoder(factor, transfer=lambda v: float(cell.normalized_factor(np.asarray(v))))
    encoded = np.array([encoder.realized_factor(float(t)) for t in temps])
    table = render_series(
        "T",
        [float(t) for t in temps],
        {
            "f(T) analytic": analytic.tolist(),
            "norm. I_SL (linear V_BG)": device.tolist(),
            "norm. I_SL (encoder)": encoded.tolist(),
        },
        title="Fig 6c — fractional factor vs normalised DG FeFET current "
        "(paper: approximate match over the V_BG = 0..0.7 V range)",
        float_fmt="{:.4f}",
    )
    emit(capsys, "fig6c_factor_match", table)
    # Encoder-realised factor tracks the analytic curve tightly.
    assert np.max(np.abs(encoded - analytic)) < 0.05


def test_fig6c_refit_parameters(benchmark, capsys):
    """Re-derive (a,b,c,d) by fitting the device curve, as the authors did."""
    cell = make_cell(1)
    published = FractionalFactor()
    temps = np.linspace(0.0, published.t_max, 60)
    target = cell.normalized_factor(published.vbg_for_temperature(temps))
    fitted = benchmark(lambda: fit_fractional_factor(temps, target))
    rows = [
        ("a", published.a, fitted.a),
        ("b", published.b, fitted.b),
        ("c", published.c, fitted.c),
        ("d", published.d, fitted.d),
        (
            "max |f - target|",
            float(np.max(np.abs(published.value(temps) - target))),
            float(np.max(np.abs(fitted.value(temps) - target))),
        ),
    ]
    table = render_table(
        ["parameter", "published", "fit to device curve"],
        rows,
        title="Fig 6c — fractional-factor parameters: published vs re-fit",
        float_fmt="{:.4g}",
    )
    emit(capsys, "fig6c_refit", table)
    assert float(np.max(np.abs(fitted.value(temps) - target))) <= float(
        np.max(np.abs(published.value(temps) - target))
    ) + 1e-9
