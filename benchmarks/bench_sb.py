"""Simulated bifurcation vs single-flip annealing: time to 0.9× best-known.

The pitch for the SB solver family is wall-time-to-quality on dense-ish
instances: every spin moves on every step for the price of one coupling
matvec, where a single-flip engine must pay one iteration per moved spin.
This bench pits dSB — its matvec served by the tiled crossbar's
digitally-combined behavioral MVM (:meth:`TiledCrossbar.batch_matvec`),
the machine framing the engine is built for — against the batch
single-flip in-situ and direct-E engines at a *matched replica count* on
a K2000-style instance (complete graph, ±1 weights, so ``J = W/4`` is
dyadic and the k-bit stored image is exact), and asserts:

* **time to 0.9× best-known** — each engine runs fresh solves at doubling
  iteration budgets until its best cut reaches 0.9× the best-known cut
  (proxied by the strongest configuration observed across the bench, from
  a generous dSB reference run); dSB must get there ≥ 5× faster in wall
  time than *each* flip engine at the full size (≥ 2× at reduced CI smoke
  sizes).  Budget-capped flip engines count their spent time as a lower
  bound, which only understates the ratio.
* **no densification** — the coupling matrix is never materialised as one
  ``(n, n)`` array (``toarray`` and the full ``matrix_hat`` image are
  trapped for the whole run); the crossbar holds per-tile blocks only,
  O(nnz) for the stored entries.
* **O(R·n + nnz) solve memory** — peak traced memory across all solves
  stays within an explicit replica-state + CSR-transient budget.
* **exact readout** — reported SB best energies reproduce from the
  returned configurations on the *true* (unquantized) model, pinning the
  stored-image exactness story end to end.

Scale knobs (environment variables):

* ``REPRO_SB_BENCH_NODES``     — node count (default 2 048).
* ``REPRO_SB_BENCH_REPLICAS``  — replica count R (default 4).
* ``REPRO_SB_BENCH_TILE``      — crossbar tile size (default 256).
* ``REPRO_SB_BENCH_REF_ITERS`` — dSB reference-run budget (default 1 600).
* ``REPRO_SB_BENCH_FLIP_CAP``  — flip-engine budget cap (default 256 000).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from benchmarks._common import emit, forbid_densification
from repro.arch.tiling import TiledCrossbar
from repro.core import BatchDirectEAnnealer, BatchInSituAnnealer, SbEngine
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_SB_BENCH_NODES", "2048"))
BENCH_REPLICAS = int(os.environ.get("REPRO_SB_BENCH_REPLICAS", "4"))
BENCH_TILE = int(os.environ.get("REPRO_SB_BENCH_TILE", "256"))
BENCH_REF_ITERS = int(os.environ.get("REPRO_SB_BENCH_REF_ITERS", "1600"))
BENCH_FLIP_CAP = int(os.environ.get("REPRO_SB_BENCH_FLIP_CAP", "256000"))
SB_START_BUDGET = 25
FLIP_START_BUDGET = 4000
TARGET_FRACTION = 0.9
SEED = 2028

#: Peak-memory budget (bytes) for the solve phase: replica state and
#: matvec temporaries (R·n), CSR-sized transients (nnz) and interpreter /
#: base overhead.  The (n, n) dense matrix at the full size is ~34 MB per
#: copy on top of the already-traced tile blocks and busts this together
#: with the densification traps.
BYTES_PER_STATE = 64
BYTES_PER_NNZ = 64
BYTES_BASE = 64 * 1024 * 1024


def k_instance(n: int, seed: int = 7) -> tuple[SparseIsingModel, float]:
    """K2000-style instance: complete graph, ±1 weights (J = W/4 dyadic)."""
    rng = ensure_rng(seed)
    r, c = np.triu_indices(n, k=1)
    w = rng.choice([-1.0, 1.0], size=r.size)
    model = SparseIsingModel.from_edges(n, r, c, w / 4.0, name=f"K{n}-pm1")
    return model, float(w.sum())


def time_to_target(run_at_budget, budgets, target_cut):
    """First-success wall time over fresh solves at doubling budgets.

    Each budget is an independent fixed-seed solve (schedule retuned to the
    budget, as a practitioner would), so the reported time is that of the
    one run that reached the target — not the cumulative search.  Returns
    ``(seconds, budget, best_cut, reached)``; a capped engine reports its
    last (largest) run as a lower bound with ``reached=False``.
    """
    elapsed, budget, best = float("nan"), 0, -np.inf
    for budget in budgets:
        start = time.perf_counter()
        best = run_at_budget(budget)
        elapsed = time.perf_counter() - start
        if best >= target_cut:
            return elapsed, budget, best, True
    return elapsed, budget, best, False


def test_sb_time_to_target(capsys):
    """dSB reaches 0.9× best-known ≥5× faster than the flip engines."""
    R = BENCH_REPLICAS
    model, w_sum = k_instance(BENCH_NODES)
    n, nnz = model.num_spins, model.nnz

    def as_cut(energies) -> float:
        return float(w_sum / 2.0 - np.min(energies))

    sb_budgets = [
        SB_START_BUDGET * 2**k
        for k in range(32)
        if SB_START_BUDGET * 2**k <= BENCH_REF_ITERS
    ]
    flip_budgets = [
        FLIP_START_BUDGET * 2**k
        for k in range(32)
        if FLIP_START_BUDGET * 2**k <= BENCH_FLIP_CAP
    ]

    with forbid_densification():
        # Program the crossbar once (the machine's one-off write phase;
        # the hardware cost ledgers account for it separately) — the SB
        # solves below are served by its per-tile behavioral MVM.  The
        # build shards straight from CSR under the same densification
        # traps as the solves; only the solve phase is memory-traced.
        crossbar = TiledCrossbar(model, tile_size=BENCH_TILE)
        stored = crossbar.stored_model(name=f"{model.name}@tiled")

        # Best-known proxy: the strongest configuration this bench ever
        # observes, from a generous dSB reference run (asserted below to
        # dominate every other run).
        reference = SbEngine(
            stored, replicas=R, seed=SEED, matvec=crossbar.batch_matvec
        ).run(BENCH_REF_ITERS)
        best_known = as_cut(reference.best_energies)
        target = TARGET_FRACTION * best_known

        sb_result = {}

        def run_sb(budget):
            result = SbEngine(
                stored, replicas=R, seed=SEED + 1,
                matvec=crossbar.batch_matvec,
            ).run(budget)
            sb_result["last"] = result
            return as_cut(result.best_energies)

        def run_flip(engine_cls):
            def run(budget):
                result = engine_cls(model, replicas=R, seed=SEED + 1).run(budget)
                return as_cut(result.best_energies)

            return run

        sb_time, sb_budget, sb_cut, sb_reached = time_to_target(
            run_sb, sb_budgets, target
        )
        flip_rows = {
            label: time_to_target(run_flip(cls), flip_budgets, target)
            for label, cls in (
                ("insitu", BatchInSituAnnealer),
                ("sa", BatchDirectEAnnealer),
            )
        }

        # Memory probe, separate from the timed runs above: tracemalloc
        # adds per-allocation overhead that would skew the wall-time
        # comparison (the flip engines allocate every iteration), so the
        # budget is asserted on dedicated representative solves.
        tracemalloc.start()
        SbEngine(
            stored, replicas=R, seed=SEED + 2, matvec=crossbar.batch_matvec
        ).run(max(sb_budgets[0], 50))
        BatchInSituAnnealer(model, replicas=R, seed=SEED + 2).run(
            FLIP_START_BUDGET
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    # The reported SB energies are *true* model energies: ±1 weights make
    # the k-bit stored image exact, so the stored-model readouts reproduce
    # on the unquantized couplings.
    last = sb_result["last"]
    r_best = int(np.argmin(last.best_energies))
    assert model.energy(last.best_sigmas[r_best]) == last.best_energies[r_best]
    assert sb_reached, (
        f"dSB never reached the {TARGET_FRACTION}× target within "
        f"{BENCH_REF_ITERS} iterations — SB quality has regressed"
    )

    rows = [
        (
            "dSB@tiled",
            f"{sb_budget}",
            f"{sb_cut:.0f}",
            f"{sb_time:.2f} s",
            "1.0x",
        )
    ]
    full_size = BENCH_NODES >= 2048 and BENCH_FLIP_CAP >= 256000
    floor = 5.0 if full_size else 2.0
    for label, (f_time, f_budget, f_cut, f_reached) in flip_rows.items():
        # The best-known proxy must dominate every observed configuration,
        # otherwise the target itself was mis-set.
        assert f_cut <= best_known
        ratio = f_time / sb_time
        rows.append(
            (
                label,
                f"{f_budget}{'' if f_reached else ' (cap)'}",
                f"{f_cut:.0f}",
                f"{'' if f_reached else '> '}{f_time:.2f} s",
                f"{ratio:.1f}x",
            )
        )
        # A capped engine's spent time is a lower bound on its
        # time-to-target, so the assertion only gets easier to fail.
        assert ratio >= floor, (
            f"dSB only {ratio:.2f}x faster than {label} to "
            f"{TARGET_FRACTION}x best-known (floor {floor}x)"
        )

    budget = BYTES_PER_STATE * R * n + BYTES_PER_NNZ * nnz + BYTES_BASE
    table = render_table(
        ["engine", "iterations", "best cut", "time to 0.9x", "vs dSB"],
        rows,
        title=(
            f"Time to {TARGET_FRACTION}x best-known ({best_known:.0f}) — "
            f"{model.name}, R={R}, tile {BENCH_TILE}"
        ),
    )
    emit(capsys, "sb", table)

    assert peak <= budget, (
        f"peak {peak / 1e6:.1f} MB exceeds O(R·n + nnz) budget "
        f"{budget / 1e6:.1f} MB — a dense intermediate has crept in"
    )
