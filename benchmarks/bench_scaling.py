"""Extension study — cost scaling beyond the paper's four sizes.

Sweeps matched-density instances from 100 to 1600 nodes and fits the
scaling exponents: the direct-E baselines' per-iteration energy must scale
≈ O(n) (full-array sensing) while the proposed design stays ≈ O(1), which
is exactly why the paper's reduction ratios grow linearly with n.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.analysis.scaling import fitted_exponent, measure_scaling
from repro.utils.tables import render_table
from repro.utils.units import NANO, PICO, from_si


def test_scaling_exponents(benchmark, capsys):
    """Per-iteration cost vs n, with fitted power-law exponents."""
    points = benchmark.pedantic(
        lambda: measure_scaling(sizes=(100, 200, 400, 800, 1600), iterations=150),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.nodes,
            f"{from_si(p.insitu_energy_per_iter, PICO):.1f} pJ",
            f"{from_si(p.asic_energy_per_iter, PICO):.0f} pJ",
            f"{from_si(p.fpga_energy_per_iter, PICO):.0f} pJ",
            f"{p.energy_reduction_asic:.0f}x / {p.energy_reduction_fpga:.0f}x",
            f"{from_si(p.insitu_time_per_iter, NANO):.0f} ns",
            f"{p.time_reduction:.2f}x",
        )
        for p in points
    ]
    table = render_table(
        [
            "n",
            "this work E/iter",
            "CiM/ASIC E/iter",
            "CiM/FPGA E/iter",
            "E reduction (ASIC/FPGA)",
            "this work t/iter",
            "t reduction",
        ],
        rows,
        title="Scaling study — per-iteration machine costs vs problem size",
    )
    exp_ours = fitted_exponent(points, "insitu_energy_per_iter")
    exp_asic = fitted_exponent(points, "asic_energy_per_iter")
    footer = (
        f"\nfitted exponents: this work n^{exp_ours:.2f} (≈ flat), "
        f"CiM/ASIC n^{exp_asic:.2f} (≈ linear — the O(n²) VMV sensed "
        f"column-parallel costs O(n) conversions per iteration)"
    )
    emit(capsys, "scaling_study", table + footer)

    assert exp_ours < 0.2
    assert 0.8 < exp_asic < 1.2
    # reductions grow monotonically with n
    reductions = [p.energy_reduction_asic for p in points]
    assert all(b > a for a, b in zip(reductions, reductions[1:]))
