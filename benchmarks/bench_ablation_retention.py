"""Ablation — retention and endurance of the stored problem (extension).

The paper programs the array once per problem and reads non-destructively.
Two lifetime questions follow: how long does a stored problem stay solvable
(retention closes the window → the effective stored weights shrink and the
ADC sees less signal), and how many problems can one array load before
fatigue (endurance)?
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.arch import InSituCimAnnealer
from repro.devices import (
    EnduranceModel,
    FeFET,
    RetentionModel,
    VariationModel,
    annealing_runs_per_lifetime,
    extract_metrics,
)
from repro.ising import MaxCutProblem
from repro.utils.tables import render_table

#: Retention checkpoints: 1 hour, 1 day, 1 month, 1 year, 10 years.
RETENTION_TIMES = (3.6e3, 8.64e4, 2.63e6, 3.16e7, 3.16e8)


def test_device_figures_of_merit(benchmark, capsys):
    """The measured FoM table behind the lifetime studies."""
    metrics = benchmark.pedantic(
        lambda: extract_metrics(FeFET()), rounds=2, iterations=1
    )
    rows = [
        ("memory window", f"{metrics.memory_window:.2f} V"),
        ("ON/OFF ratio", f"{metrics.on_off_ratio:.2e}"),
        ("subthreshold swing", f"{metrics.subthreshold_swing * 1e3:.0f} mV/dec"),
        ("ON current", f"{metrics.on_current:.2e} A"),
        ("OFF current", f"{metrics.off_current:.2e} A"),
    ]
    table = render_table(
        ["figure of merit", "measured"],
        rows,
        title="FeFET figures of merit (compact model)",
    )
    emit(capsys, "ablation_retention_fom", table)
    assert metrics.memory_window > 1.0


def test_retention_window_and_solution_quality(benchmark, capsys):
    """Solvability of a stored problem vs storage time.

    Retention loss is emulated as a uniform weight shrink plus a V_TH
    spread growing with the closed window — pessimistic but simple.
    """
    retention = RetentionModel()
    problem = MaxCutProblem.random(64, 400, seed=13)
    model = problem.to_ising()
    runs = max(3, quality_runs() // 3)
    from repro.core import solve_maxcut

    ref = max(
        solve_maxcut(problem, "insitu", 20_000, seed=s).best_cut for s in range(2)
    )

    def sweep():
        rows = []
        for elapsed in RETENTION_TIMES:
            fraction = float(retention.polarization_fraction(elapsed))
            # window closure maps to a growing effective threshold spread
            vth_sigma = 0.15 * (1.0 - fraction)
            cuts = []
            for s in range(runs):
                machine = InSituCimAnnealer(
                    model,
                    variation=VariationModel(vth_sigma=vth_sigma),
                    seed=1_300 + s,
                )
                result = machine.run(2_000)
                cuts.append(problem.cut_value(result.anneal.best_sigma))
            rows.append(
                (
                    f"{elapsed:.1e} s",
                    f"{fraction:.3f}",
                    f"{vth_sigma * 1e3:.0f} mV",
                    float(np.mean(cuts) / ref),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["storage time", "P/P0 remaining", "emulated V_TH σ", "mean norm. cut"],
        rows,
        title="Ablation — stored-problem retention vs solution quality",
    )
    emit(capsys, "ablation_retention_quality", table)
    # even the 10-year point keeps the annealer in a useful band
    assert rows[-1][3] > 0.85


def test_endurance_budget(benchmark, capsys):
    """Problem-reload capacity of one array under fatigue."""
    endurance = EnduranceModel()
    cycles = np.logspace(0, 12, 13)

    def sweep():
        return endurance.window_fraction(cycles)

    fractions = benchmark(sweep)
    rows = [
        (f"{int(c):.0e}", f"{f:.3f}") for c, f in zip(cycles, fractions)
    ]
    table = render_table(
        ["program cycles", "MW(N)/MW0"],
        rows,
        title="Ablation — endurance (wake-up then fatigue)",
    )
    capacity = annealing_runs_per_lifetime(endurance)
    footer = (
        f"\nproblem-reload capacity (window ≥ 50 %): {capacity:.2e} problems "
        f"(one program cycle per problem; reads are non-destructive)"
    )
    emit(capsys, "ablation_endurance", table + footer)
    assert capacity > 1e6
