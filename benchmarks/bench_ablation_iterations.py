"""Ablation — iteration budget: where the baseline catches up.

Fig 10's annotation says the baselines only solve the groups given ≥10 000
iterations.  This bench sweeps the budget on one 800-node instance and
locates the catch-up point: the in-situ annealer passes the 90 % criterion
at ~700 iterations, the exponential-factor baseline needs roughly an order
of magnitude more.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.analysis import reference_cut
from repro.core import solve_maxcut
from repro.ising import build_instance, paper_instance_suite
from repro.utils.tables import render_table

BUDGETS = (200, 700, 2_000, 6_000, 20_000)


def test_iteration_budget_crossover(benchmark, capsys):
    """Success rate vs iteration budget for both solver families."""
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)

    def sweep():
        rows = []
        for budget in BUDGETS:
            stats = {}
            for method in ("insitu", "sa"):
                cuts = np.array(
                    [
                        solve_maxcut(problem, method, budget, seed=800 + s).best_cut
                        for s in range(runs)
                    ]
                )
                stats[method] = (
                    float(np.mean(cuts) / ref),
                    float(np.mean(cuts >= 0.9 * ref)),
                )
            rows.append(
                (
                    budget,
                    stats["insitu"][0],
                    f"{stats['insitu'][1]:.0%}",
                    stats["sa"][0],
                    f"{stats['sa'][1]:.0%}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        [
            "iterations",
            "this work norm. cut",
            "this work success",
            "direct-E norm. cut",
            "direct-E success",
        ],
        rows,
        title="Ablation — success vs iteration budget (800-node instance; "
        "paper: baselines need ≥10k iterations)",
    )
    emit(capsys, "ablation_iterations", table)

    by_budget = {r[0]: r for r in rows}
    # at the paper budget (700) this work succeeds, the baseline does not
    assert by_budget[700][2] != "0%"
    assert float(by_budget[700][1]) > float(by_budget[700][3])
    # with ~30× the budget the baseline catches up
    assert by_budget[20_000][4] == "100%"
    # quality improves monotonically with budget for both (within noise)
    ours = [r[1] for r in rows]
    assert ours[-1] >= ours[0]
