"""Ablation — the fractional annealing factor.

Three studies around Eq. 10-11:

* approximation error of the first-order surrogate vs the true Metropolis
  exponential, over the ΔE/T range the annealer actually visits;
* read-out gain (``acceptance_scale``) sensitivity — the free scaling the
  sensing chain applies before the ``E_inc ≤ rand`` comparison;
* sensitivity to the (a, b, c, d) parameterisation of ``f(T)``.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, quality_runs
from repro.analysis import reference_cut
from repro.core import ExponentialFactor, FractionalFactor, solve_maxcut
from repro.ising import build_instance, paper_instance_suite
from repro.utils.tables import render_series, render_table


def test_first_order_approximation_error(benchmark, capsys):
    """|e^{-x} − max(0, 1−x)|: small where annealing operates (x ≲ 1)."""
    exp_factor = ExponentialFactor()
    xs = np.linspace(0.0, 3.0, 13)

    def compute():
        exact = exp_factor.acceptance(xs, 1.0)
        approx = exp_factor.first_order(xs, 1.0)
        return exact, approx

    exact, approx = benchmark(compute)
    table = render_series(
        "ΔE/T",
        [float(x) for x in xs],
        {
            "exp(-ΔE/T)": exact.tolist(),
            "1 - ΔE/T (clipped)": approx.tolist(),
            "|error|": np.abs(exact - approx).tolist(),
        },
        title="Eq. 10 — Metropolis factor vs first-order surrogate",
        float_fmt="{:.4f}",
    )
    emit(capsys, "ablation_factor_approx", table)
    small = xs <= 0.5
    assert np.max(np.abs(exact - approx)[small]) < 0.12
    # the surrogate systematically under-accepts large uphill moves
    assert np.all(approx <= exact + 1e-12)


def test_acceptance_scale_sensitivity(benchmark, capsys):
    """Read-out gain β sweep at the 800-node / 700-iteration budget."""
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)
    scales = (4.0, 15.0, 60.0, 240.0, "auto")

    def sweep():
        rows = []
        for beta in scales:
            cuts = [
                solve_maxcut(
                    problem,
                    "insitu",
                    spec.iterations,
                    seed=300 + s,
                    acceptance_scale=beta,
                ).best_cut
                for s in range(runs)
            ]
            rows.append(
                (
                    str(beta),
                    float(np.mean(cuts) / ref),
                    float(np.mean(np.asarray(cuts) >= 0.9 * ref)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["gain β", "mean norm. cut", "success"],
        rows,
        title="Ablation — read-out gain of the E_inc comparison",
    )
    emit(capsys, "ablation_factor_gain", table)
    by_scale = {r[0]: r for r in rows}
    # the auto gain must be in the successful regime
    assert by_scale["auto"][2] >= 0.5
    # too-low gain (≈ always-accept small uphill) degrades quality
    assert by_scale["4.0"][1] < by_scale["auto"][1]


def test_factor_parameter_sensitivity(benchmark, capsys):
    """Perturbing (a, b, c, d) around the published values."""
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    ref = reference_cut(problem)
    runs = max(3, quality_runs() // 2)
    variants = {
        "published (1, -0.006, 5, -0.2)": FractionalFactor(),
        "steeper (1, -0.012, 5, -0.2)": FractionalFactor(b=-0.012),
        "offset-free (1, -0.0067, 5, 0)": FractionalFactor(b=-0.0067, d=0.0),
        "shallow (0.5, -0.003, 2.5, -0.2)": FractionalFactor(a=0.5, b=-0.003, c=2.5),
    }

    def sweep():
        rows = []
        for label, factor in variants.items():
            cuts = [
                solve_maxcut(
                    problem,
                    "insitu",
                    spec.iterations,
                    seed=500 + s,
                    factor=factor,
                ).best_cut
                for s in range(runs)
            ]
            rows.append(
                (
                    label,
                    f"{factor.t_max:.0f}",
                    float(np.mean(cuts) / ref),
                    float(np.mean(np.asarray(cuts) >= 0.9 * ref)),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["f(T) parameters", "T_max", "mean norm. cut", "success"],
        rows,
        title="Ablation — fractional-factor parameterisation",
    )
    emit(capsys, "ablation_factor_params", table)
    published = rows[0]
    # the published parameterisation is competitive with all variants
    assert published[3] >= max(r[3] for r in rows) - 0.34
