"""Fig 10 — COP-solving efficiency of the annealers.

Monte-Carlo normalised cut values and success rates at the paper's
iteration budgets (700 / 1000 / 10 000 / 100 000 for 800/1000/2000/3000
nodes).  Paper headline: the proposed annealer averages ~98 % success while
the direct-E baselines average ~50 % — they only pass the groups that get
≥ 10 000 iterations.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.analysis import quality_table
from repro.core import solve_maxcut
from repro.ising import build_instance, paper_instance_suite


def test_fig10_normalized_cuts(quality_results, benchmark, capsys):
    """Fig 10: per-group normalised cuts + the 98 % vs 50 % headline."""
    table = quality_table(quality_results)
    emit(capsys, "fig10_quality", table)

    # Benchmark kernel: one in-situ solve at the paper's 800-node budget.
    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    benchmark.pedantic(
        lambda: solve_maxcut(problem, "insitu", spec.iterations, seed=5),
        rounds=3,
        iterations=1,
    )

    ours = [quality_results[n]["This work"] for n in quality_results]
    base = [quality_results[n]["CiM/FPGA & CiM/ASIC"] for n in quality_results]

    # This work: high success everywhere (paper: 98 % average).
    avg_ours = sum(g.success for g in ours) / len(ours)
    assert avg_ours >= 0.90

    # Baselines: fail the short-budget groups, pass the long-budget ones
    # (paper: 50 % average — only 2000/3000 solved).
    avg_base = sum(g.success for g in base) / len(base)
    assert avg_base <= 0.75
    base_by_nodes = {g.nodes: g for g in base}
    assert base_by_nodes[800].success < 0.5
    assert base_by_nodes[2000].success > 0.5
    assert base_by_nodes[3000].success > 0.5

    # Per-group: this work's normalised cut is at least the baselines'.
    for n in quality_results:
        assert (
            quality_results[n]["This work"].mean_normalized
            >= quality_results[n]["CiM/FPGA & CiM/ASIC"].mean_normalized - 0.01
        )


def test_fig10_convergence_speed(benchmark, capsys):
    """The "Converge Faster" annotation: best-cut trajectory comparison."""
    import numpy as np

    from repro.core import DirectEAnnealer, InSituAnnealer
    from repro.utils.tables import render_series

    spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
    problem = build_instance(spec)
    model = problem.to_ising()

    def run_both():
        a = InSituAnnealer(model, record_trace=True, seed=9).run(spec.iterations)
        b = DirectEAnnealer(model, record_trace=True, seed=9).run(spec.iterations)
        return a, b

    ours, sa = benchmark.pedantic(run_both, rounds=1, iterations=1)
    checkpoints = list(range(99, spec.iterations, 100))
    series = {
        "This work (best cut)": [
            problem.cut_from_energy(float(ours.best_trace[c])) for c in checkpoints
        ],
        "direct-E SA (best cut)": [
            problem.cut_from_energy(float(sa.best_trace[c])) for c in checkpoints
        ],
    }
    table = render_series(
        "iteration",
        checkpoints,
        series,
        title="Fig 10 inset — convergence on an 800-node instance "
        "(paper: fractional factor converges faster than exponential)",
        float_fmt="{:.0f}",
    )
    emit(capsys, "fig10_convergence", table)
    ours_final = problem.cut_from_energy(float(ours.best_trace[-1]))
    sa_final = problem.cut_from_energy(float(sa.best_trace[-1]))
    assert ours_final >= sa_final
