"""Serve acceptance bench: packed multi-tenant throughput, bit-identically.

The serving layer's claim is that many small independent jobs cost ONE
batch engine run: the scheduler stacks their couplings block-diagonally
and a single (R, Σnᵢ) rank-t step advances every tenant
(:mod:`repro.core.blockstack`), while a solo caller pays the full
per-solve overhead — schedule build, state setup, Python-loop iteration
— once *per job*.  Asserted here:

* **Bit-identity before timing** — every job's served result (energies,
  spin vectors, acceptance counters, per replica) equals its solo
  ``solve_ising(model, method, iterations, seed, replicas=R)`` call
  exactly.  The solo sweep that provides the references is also the
  sequential baseline being timed; a speedup bought by changing results
  would be meaningless.
* **≥5× jobs/sec over sequential ``solve_ising`` at the full 1k-job
  protocol** (the acceptance criterion; ≥2× at any smoke size — CI runs
  reduced).
* **Bounded tail latency** — the p99 submit→result latency under the
  full concurrent load stays below the time the sequential baseline
  needs for the whole sweep.
* **No densification** — both sweeps run under the
  ``SparseIsingModel.toarray`` / dense ``matrix_hat`` trap.

Scale knobs (environment variables):

* ``REPRO_SERVE_BENCH_JOBS``     — concurrent jobs (default 1000).
* ``REPRO_SERVE_BENCH_SPINS``    — spins per job (default 48).
* ``REPRO_SERVE_BENCH_ITERS``    — annealing iterations (default 200).
* ``REPRO_SERVE_BENCH_REPLICAS`` — replicas per job (default 4).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from benchmarks._common import emit
from benchmarks._common import forbid_densification as _forbid_densification
from repro.core import solve_ising
from repro.ising.sparse import SparseIsingModel
from repro.serve import SolverService, job_request, service_config
from repro.utils.tables import render_table

BENCH_JOBS = int(os.environ.get("REPRO_SERVE_BENCH_JOBS", "1000"))
BENCH_SPINS = int(os.environ.get("REPRO_SERVE_BENCH_SPINS", "48"))
BENCH_ITERS = int(os.environ.get("REPRO_SERVE_BENCH_ITERS", "200"))
BENCH_REPLICAS = int(os.environ.get("REPRO_SERVE_BENCH_REPLICAS", "4"))
METHOD = "insitu"
SEED = 7100

#: The acceptance floor: ≥5× at the full 1k-concurrent-job protocol,
#: ≥2× at any smoke size (CI runs reduced).
FULL_JOBS = 1000
SPEEDUP_FLOOR = 5.0 if BENCH_JOBS >= FULL_JOBS else 2.0


def _make_models():
    """Distinct small dyadic (±1/4) instances, one per tenant job."""
    models = []
    for i in range(BENCH_JOBS):
        base = SparseIsingModel.random(BENCH_SPINS, degree=6.0, seed=i)
        indptr, indices, data = base.csr_arrays()
        models.append(SparseIsingModel(
            indptr, indices, np.sign(data) * 0.25, None, 0.0, f"tenant-{i}"
        ))
    return models


def _identical(solo, served) -> bool:
    return (
        np.array_equal(solo.best_energies, served.best_energies)
        and np.array_equal(solo.best_sigmas, served.best_sigmas)
        and np.array_equal(solo.final_energies, served.final_energies)
        and np.array_equal(solo.final_sigmas, served.final_sigmas)
        and np.array_equal(solo.accepted, served.accepted)
    )


async def _serve_sweep(jobs):
    """Submit every job concurrently; per-job submit→result latencies."""
    latencies = [0.0] * len(jobs)
    results = [None] * len(jobs)
    config = service_config(
        max_queue=max(256, BENCH_JOBS),
        max_batch_jobs=256,
        gather_window=0.005,
    )

    async def one(i, svc, loop):
        t0 = loop.time()
        results[i] = await svc.submit(jobs[i])
        latencies[i] = loop.time() - t0

    async with SolverService(config) as svc:
        loop = asyncio.get_running_loop()
        await asyncio.gather(*(one(i, svc, loop) for i in range(len(jobs))))
        stats = svc.stats()
    return results, latencies, stats


def test_serve_packs_concurrent_jobs(capsys):
    """1k concurrent small jobs: ≥5×/≥2× jobs/sec, results bit-identical."""
    models = _make_models()
    seeds = [SEED + i for i in range(BENCH_JOBS)]

    with _forbid_densification():
        # Sequential baseline — also the bit-identity reference set.
        seq_start = time.perf_counter()
        solo = [
            solve_ising(
                m, method=METHOD, iterations=BENCH_ITERS, seed=s,
                replicas=BENCH_REPLICAS,
            )
            for m, s in zip(models, seeds)
        ]
        seq_time = time.perf_counter() - seq_start

        jobs = [
            job_request(
                f"tenant-{i}", m, method=METHOD, iterations=BENCH_ITERS,
                replicas=BENCH_REPLICAS, seed=s,
            )
            for i, (m, s) in enumerate(zip(models, seeds))
        ]
        serve_start = time.perf_counter()
        served, latencies, stats = asyncio.run(_serve_sweep(jobs))
        serve_time = time.perf_counter() - serve_start

    # Every result bit-identical to its solo solve — before any timing
    # assertion, so a fast-but-wrong service cannot pass.
    mismatched = [
        jobs[i].job_id for i in range(BENCH_JOBS)
        if not _identical(solo[i], served[i])
    ]
    assert not mismatched, (
        f"{len(mismatched)} served job(s) diverged from their solo "
        f"solves, e.g. {mismatched[:5]}"
    )

    speedup = seq_time / serve_time
    seq_jps = BENCH_JOBS / seq_time
    serve_jps = BENCH_JOBS / serve_time
    lat = np.sort(np.asarray(latencies))
    p50 = float(lat[int(0.50 * (len(lat) - 1))])
    p99 = float(lat[int(0.99 * (len(lat) - 1))])
    packed_share = stats["packed_jobs"] / max(1, stats["jobs"])

    table = render_table(
        ["quantity", "value"],
        [
            ("jobs / spins / replicas",
             f"{BENCH_JOBS} / {BENCH_SPINS} / {BENCH_REPLICAS}"),
            ("method / iterations", f"{METHOD} / {BENCH_ITERS}"),
            ("sequential sweep", f"{seq_time:.2f} s ({seq_jps:.0f} jobs/s)"),
            ("served sweep", f"{serve_time:.2f} s ({serve_jps:.0f} jobs/s)"),
            ("speedup", f"{speedup:.1f}× (floor {SPEEDUP_FLOOR}×)"),
            ("latency p50 / p99", f"{p50 * 1e3:.0f} / {p99 * 1e3:.0f} ms"),
            ("batches / packed share",
             f"{stats['batches']} / {packed_share:.0%}"),
            ("bit-identical", f"{not mismatched}"),
        ],
        title=(
            f"repro.serve — {BENCH_JOBS} concurrent tenants, "
            f"n={BENCH_SPINS}, R={BENCH_REPLICAS}, block-stacked batches"
        ),
    )
    emit(capsys, "serve", table)

    assert stats["failed_jobs"] == 0, stats
    # Packing must actually have happened — a solo-only scheduler would
    # make the speedup assertion meaningless noise.
    assert packed_share > 0.9, stats
    assert speedup >= SPEEDUP_FLOOR, (
        f"served sweep only {speedup:.2f}× faster (floor {SPEEDUP_FLOOR}×):"
        f" sequential {seq_time:.2f} s vs served {serve_time:.2f} s"
    )
    # Tail latency under full concurrent load beats running the whole
    # sweep sequentially — the service never makes a tenant worse off.
    assert p99 < seq_time, (
        f"p99 latency {p99:.2f} s exceeds the sequential sweep "
        f"({seq_time:.2f} s)"
    )
