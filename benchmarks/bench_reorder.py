"""Spin-reordering acceptance bench: scattered 50k+-node instance, RCM vs identity.

PR 2's tiled bench relies on a circulant (already-banded) labelling; this
bench starts from the hostile case — the same degree-6 circulant with its
node labels scrambled, so the edge set is scattered over the whole matrix.
In the identity ordering nearly every (row-block, col-block) slot holds a
nonzero and the tiled machine would program ~``min(nnz, grid²)`` tiles —
at 50 000 nodes / ``tile_size=256`` that is ~38 000 tiles of 256² cells
each, tens of GB of arrays: *prohibitive by construction*, which is
exactly the mapping cost the reordering pass removes.  Asserted here:

* **≥5× fewer instantiated tiles** with ``reorder="rcm"`` than the
  identity ordering would program (the identity count is computed exactly
  from the CSR structure via ``count_active_tiles`` — the estimator the
  occupancy regression test pins to ``TiledCrossbar.num_tiles`` — without
  ever building those tiles).  In practice the ratio is ~50-100×.
* **Bit-identical solver output after inverse mapping** — twice over:
  at full scale the RCM machine is compared against a machine using the
  *oracle* layout (the inverse of the scrambling relabelling, which
  restores the perfect circulant band): two different internal orderings,
  one external trajectory.  At a probe size where the identity ordering
  is still affordable, ``reorder="rcm"`` vs ``reorder="none"`` is
  compared directly.
* **No densification** — ``SparseIsingModel.toarray`` and the dense
  ``matrix_hat`` assembly are trapped for the whole run, and tracemalloc
  peak stays within an O(nnz + active-tile cells) budget.

Scale knobs (environment variables):

* ``REPRO_REORDER_BENCH_NODES`` — node count (default 50 000).
* ``REPRO_REORDER_BENCH_TILE``  — tile side (default 256).
* ``REPRO_REORDER_BENCH_ITERS`` — annealing iterations (default 2 000).
* ``REPRO_REORDER_PROBE_NODES`` — probe node count (default 2 000).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from benchmarks._common import emit, fmt_bytes as _fmt_bytes
from benchmarks._common import forbid_densification as _forbid_densification
from repro.arch import InSituCimAnnealer
from repro.core import count_active_tiles, rcm_permutation
from repro.ising import scattered_circulant_maxcut
from repro.ising.sparse import SparseIsingModel
from repro.utils.tables import render_table

BENCH_NODES = int(os.environ.get("REPRO_REORDER_BENCH_NODES", "50000"))
BENCH_TILE = int(os.environ.get("REPRO_REORDER_BENCH_TILE", "256"))
BENCH_ITERS = int(os.environ.get("REPRO_REORDER_BENCH_ITERS", "2000"))
PROBE_NODES = int(os.environ.get("REPRO_REORDER_PROBE_NODES", "2000"))
PROBE_TILE = 64
PROBE_ITERS = 500
BENCH_DEGREE = 6
SEED = 2026

#: Peak-memory budget coefficients (bytes): CSR storage plus the reorder
#: pass's transient per-entry arrays (BFS gathers, lexsorts, permuted
#: copies) per nonzero, and stored tile image + bit planes + construction
#: scratch per active-tile cell.
BYTES_PER_NNZ = 320
BYTES_PER_CELL = 32
BYTES_BASE = 64 * 1024 * 1024


def _run(machine: InSituCimAnnealer, iters: int):
    result = machine.run(iters)
    return (
        result.anneal.best_energy,
        result.anneal.energy,
        result.anneal.accepted,
        result.anneal.best_sigma,
    )


def test_reorder_recovers_banded_occupancy(capsys):
    """RCM maps a scattered 50k-node instance onto ≥5× fewer tiles."""
    problem, oracle = scattered_circulant_maxcut(BENCH_NODES, seed=99)
    model = problem.to_ising(backend="sparse")
    assert isinstance(model, SparseIsingModel)
    n, nnz = model.num_spins, model.nnz

    # Identity-ordering cost, computed from structure alone — programming
    # those tiles for real is the tens-of-GB case this pass eliminates.
    identity_tiles = count_active_tiles(model, BENCH_TILE)
    perm = rcm_permutation(model)

    tracemalloc.start()
    with _forbid_densification():
        build_start = time.perf_counter()
        machine = InSituCimAnnealer(
            model, tile_size=BENCH_TILE, reorder="rcm", seed=SEED
        )
        build_time = time.perf_counter() - build_start
        solve_start = time.perf_counter()
        rcm_out = _run(machine, BENCH_ITERS)
        solve_time = time.perf_counter() - solve_start
        # Same instance stored under the *oracle* band layout: a different
        # tile grid must produce the bit-identical external trajectory.
        oracle_machine = InSituCimAnnealer(
            model, tile_size=BENCH_TILE, permutation=oracle, seed=SEED
        )
        oracle_out = _run(oracle_machine, BENCH_ITERS)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    crossbar = machine.crossbar
    rcm_tiles = crossbar.num_tiles
    active_cells = (rcm_tiles + oracle_machine.crossbar.num_tiles) * BENCH_TILE**2
    budget = BYTES_PER_NNZ * nnz + BYTES_PER_CELL * active_cells + BYTES_BASE
    best_cut = problem.cut_from_energy(rcm_out[0])

    table = render_table(
        ["quantity", "value"],
        [
            ("nodes / nnz", f"{n} / {nnz}"),
            ("tile size / grid", f"{BENCH_TILE} / {crossbar.grid}×{crossbar.grid}"),
            ("bandwidth identity → rcm",
             f"{perm.bandwidth_before} → {perm.bandwidth_after}"),
            ("tiles identity ordering", f"{identity_tiles}"),
            ("tiles rcm ordering", f"{rcm_tiles} "
             f"({identity_tiles / max(rcm_tiles, 1):.0f}× fewer)"),
            ("tiles oracle ordering", f"{oracle_machine.crossbar.num_tiles}"),
            ("estimated vs actual rcm tiles",
             f"{perm.estimated_active_tiles(BENCH_TILE)} vs {rcm_tiles}"),
            ("reorder + program time", f"{build_time:.2f} s"),
            (f"solve time ({BENCH_ITERS} iters)", f"{solve_time:.2f} s"),
            ("best cut", f"{best_cut:g}"),
            ("rcm ≡ oracle trajectory",
             f"{rcm_out[:3] == oracle_out[:3] and np.array_equal(rcm_out[3], oracle_out[3])}"),
            ("peak memory", _fmt_bytes(peak)),
            ("O(nnz + cells) budget", _fmt_bytes(budget)),
        ],
        title=(
            f"Spin reordering — scattered n={n}, degree {BENCH_DEGREE}, "
            f"tile_size={BENCH_TILE}"
        ),
    )
    emit(capsys, "reorder", table)

    # ≥5× fewer instantiated tiles than the identity ordering would need.
    assert rcm_tiles * 5 <= identity_tiles, (
        f"rcm programs {rcm_tiles} tiles, identity {identity_tiles}"
    )
    # The estimator is exact — the machine programmed what was predicted.
    assert rcm_tiles == perm.estimated_active_tiles(BENCH_TILE)
    # Layout independence at scale: two different internal orderings, one
    # external fixed-seed trajectory (±1 weights store exactly).
    assert rcm_out[:3] == oracle_out[:3]
    assert np.array_equal(rcm_out[3], oracle_out[3])
    # The solution is real: it reproduces its energy on the stored image.
    assert machine.hw_model.energy(rcm_out[3]) == rcm_out[0]
    # Bounded memory: O(nnz + active-tile cells), no densification.
    assert peak <= budget, (
        f"peak {_fmt_bytes(peak)} exceeds budget {_fmt_bytes(budget)}"
    )


def test_reorder_probe_bit_identical_to_identity(capsys):
    """rcm vs none, compared directly at a size where none is affordable."""
    problem, _ = scattered_circulant_maxcut(PROBE_NODES, seed=99)
    model = problem.to_ising(backend="sparse")
    with _forbid_densification():
        plain = InSituCimAnnealer(model, tile_size=PROBE_TILE, seed=SEED)
        plain_out = _run(plain, PROBE_ITERS)
        rcm = InSituCimAnnealer(
            model, tile_size=PROBE_TILE, reorder="rcm", seed=SEED
        )
        rcm_out = _run(rcm, PROBE_ITERS)
    emit(
        capsys, "reorder_probe",
        f"probe n={PROBE_NODES}, tile={PROBE_TILE}: identity "
        f"{plain.crossbar.num_tiles} tiles vs rcm {rcm.crossbar.num_tiles} "
        f"tiles; trajectories identical: "
        f"{plain_out[:3] == rcm_out[:3]}",
    )
    assert rcm_out[:3] == plain_out[:3]
    assert np.array_equal(rcm_out[3], plain_out[3])
    assert rcm.crossbar.num_tiles * 5 <= plain.crossbar.num_tiles
