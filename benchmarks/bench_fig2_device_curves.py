"""Fig 2b/2d — FeFET and DG FeFET transfer curves.

Regenerates the device-level figures: the programmed low/high-``V_TH``
``I_D-V_G`` curves of the FeFET (Fig 2b) and the back-gate-shifted
``I_D-V_FG`` family of the DG FeFET (Fig 2d).  The pytest-benchmark timings
cover the device-model evaluation kernels.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.devices import DGFeFET, FeFET
from repro.utils.tables import render_series


def test_fig2b_fefet_transfer_curves(benchmark, capsys):
    """Fig 2b: programmed FeFET I_D-V_G states separated by the memory window."""
    fefet = FeFET()
    vg = np.linspace(-0.5, 1.5, 21)

    def sweep_both_states():
        fefet.program_bit(1)
        on = fefet.id_vg(vg)
        fefet.program_bit(0)
        off = fefet.id_vg(vg)
        return on, off

    on, off = benchmark(sweep_both_states)
    table = render_series(
        "V_G (V)",
        [float(v) for v in vg],
        {"I_D low-VTH (A)": on.tolist(), "I_D high-VTH (A)": off.tolist()},
        title="Fig 2b — FeFET I_D-V_G for programmed low/high V_TH "
        "(paper: ~1e-9..1e-4 A over -0.5..1.5 V, window ≈ 1.2 V)",
        float_fmt="{:.3e}",
    )
    emit(capsys, "fig2b_fefet_idvg", table)
    assert on[-1] > 1e-5
    assert off[0] < 1e-8


def test_fig2d_dgfefet_family(benchmark, capsys):
    """Fig 2d: V_BG from -3 V to 5 V shifts the DG FeFET transfer curve."""
    cell = DGFeFET()
    cell.program_bit(1)
    vfg = np.linspace(-0.5, 1.5, 21)
    vbg_values = list(range(-3, 6))

    def sweep_family():
        return {vbg: cell.id_vfg(vfg, float(vbg)) for vbg in vbg_values}

    family = benchmark(sweep_family)
    table = render_series(
        "V_FG (V)",
        [float(v) for v in vfg],
        {f"V_BG={vbg:+d}V": family[vbg].tolist() for vbg in vbg_values},
        title="Fig 2d — DG FeFET I_D-V_FG family under V_BG = -3..5 V "
        "(paper: curves shift left as V_BG rises; FE state undisturbed)",
        float_fmt="{:.2e}",
    )
    emit(capsys, "fig2d_dgfefet_family", table)
    mid = len(vfg) // 2
    currents = [float(family[v][mid]) for v in vbg_values]
    assert all(b > a for a, b in zip(currents, currents[1:]))


def test_fig2_hysteresis_loop(benchmark, capsys):
    """Supporting artifact: the Preisach major loop behind the V_TH states."""
    from repro.devices import PreisachFerroelectric

    fe = PreisachFerroelectric()
    v, p = benchmark(lambda: fe.major_loop(v_max=4.0, points=41))
    table = render_series(
        "V (V)",
        [float(x) for x in v[::4]],
        {"P/Ps": [float(x) for x in p[::4]]},
        title="Preisach major loop (programming physics behind Fig 2b)",
        float_fmt="{:+.3f}",
    )
    emit(capsys, "fig2_preisach_loop", table)
    assert p.max() > 0.95 and p.min() < -0.95
