"""Development tooling for the repository (not shipped with the package)."""
