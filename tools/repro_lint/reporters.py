"""Finding reporters: terminal text and machine-readable JSON."""

from __future__ import annotations

import json

from tools.repro_lint.engine import Finding


def render_text(findings: list[Finding], files_scanned: int, rules) -> str:
    """One ``path:line:col: CODE message`` line per finding + a summary."""
    lines = [f.render() for f in findings]
    if findings:
        per_code: dict[str, int] = {}
        for f in findings:
            per_code[f.code] = per_code.get(f.code, 0) + 1
        breakdown = ", ".join(f"{code} x{n}" for code, n in sorted(per_code.items()))
        lines.append(
            f"repro-lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} ({breakdown}) "
            f"in {files_scanned} files"
        )
    else:
        lines.append(
            f"repro-lint: clean ({files_scanned} files, "
            f"{len(rules)} rules)"
        )
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int, rules) -> str:
    """Stable JSON document (for CI annotation tooling)."""
    return json.dumps(
        {
            "clean": not findings,
            "files_scanned": files_scanned,
            "rules": [
                {"code": r.code, "name": r.name, "summary": r.summary}
                for r in rules
            ],
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
        sort_keys=False,
    )
