"""Module entry point: ``python -m tools.repro_lint src benchmarks tests``."""

import sys

from tools.repro_lint.cli import main

sys.exit(main())
