"""Linter engine: file contexts, alias resolution, suppressions, runner.

The engine is pure stdlib (``ast`` + ``tokenize``-free line scanning) so
it can run in CI before any dependency is installed.  Rules receive a
:class:`FileContext` per file — parsed tree, raw lines, and an
import-alias table that resolves ``np.random.default_rng`` no matter how
``numpy`` was imported — and may also implement a project-wide pass that
sees every file at once (used by the API/CLI parity rule).

Suppressions
------------
A finding on line *L* is suppressed by ``# repro-lint: disable=RPL001``
either trailing on line *L* itself or on a comment-only line directly
above it (for statements that do not fit one line).  Multiple codes are
comma-separated.  Every suppression must match a finding: stale ones are
reported as ``RPL000`` so allowlist entries cannot outlive the code they
excuse.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")

#: Engine pseudo-codes (not rule classes).
UNUSED_SUPPRESSION = "RPL000"
SYNTAX_ERROR = "RPL900"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Suppressions:
    """Per-file suppression table with used/unused bookkeeping."""

    def __init__(self, lines: list[str]) -> None:
        # (comment_line, code) -> set of target lines it covers
        self._targets: dict[tuple[int, str], set[int]] = {}
        self._used: set[tuple[int, str]] = set()
        # target line -> [(comment_line, code), ...]
        self._by_line: dict[int, list[tuple[int, str]]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = [c.strip() for c in match.group(1).split(",")]
            if text.lstrip().startswith("#"):
                # Comment-only line: covers the next non-comment line.
                target = lineno + 1
                while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                    target += 1
            else:
                target = lineno
            for code in codes:
                self._targets[(lineno, code)] = {target}
                self._by_line.setdefault(target, []).append((lineno, code))

    def is_suppressed(self, finding: Finding) -> bool:
        for key in self._by_line.get(finding.line, []):
            if key[1] == finding.code:
                self._used.add(key)
                return True
        return False

    def unused(self, path: str) -> list[Finding]:
        findings = []
        for (lineno, code), _ in sorted(self._targets.items()):
            if (lineno, code) not in self._used:
                findings.append(
                    Finding(
                        path, lineno, 0, UNUSED_SUPPRESSION,
                        f"unused suppression: no {code} finding on the line "
                        f"it covers (remove it, or it will hide a future "
                        f"regression silently)",
                    )
                )
        return findings


class FileContext:
    """A parsed source file plus import-alias resolution helpers."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.aliases = self._collect_aliases(tree, path)

    @staticmethod
    def _module_name(path: str) -> str | None:
        """Dotted module name for ``src``-layout files (for relative imports)."""
        parts = Path(path).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
            if parts and parts[-1] == "__init__":
                parts = parts[:-1]
            return ".".join(parts) if parts else None
        return None

    @classmethod
    def _collect_aliases(cls, tree: ast.Module, path: str) -> dict[str, str]:
        """Map local names to canonical dotted paths.

        Function-level imports are folded into the same table — for lint
        purposes a name imported anywhere in the file counts everywhere
        (a deliberate over-approximation that keeps the resolver simple).
        """
        module = cls._module_name(path)
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the top-level name ``a``.
                        top = alias.name.split(".")[0]
                        aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    if module is None:
                        continue
                    anchor = module.split(".")
                    # level=1 is "this package" for __init__, "sibling"
                    # for plain modules; both drop `level` trailing parts.
                    anchor = anchor[: len(anchor) - node.level] if len(anchor) >= node.level else []
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{base}.{alias.name}" if base else alias.name
        return aliases

    def dotted(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a canonical dotted path.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        for any import spelling (``import numpy as np``, ``from numpy
        import random``, ``from numpy.random import default_rng``).
        Returns ``None`` for non-static expressions (calls, subscripts).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


class Project:
    """All file contexts of one lint run (for cross-file rules)."""

    def __init__(self, contexts: list[FileContext]) -> None:
        self.contexts = contexts
        self._by_path = {ctx.path: ctx for ctx in contexts}

    def get(self, path: str) -> FileContext | None:
        return self._by_path.get(path)


def collect_files(paths: list[str], root: Path) -> list[Path]:
    """Expand the given paths (relative to ``root``) into ``*.py`` files."""
    files: list[Path] = []
    for raw in paths:
        target = (root / raw).resolve()
        if target.is_dir():
            files.extend(
                p for p in sorted(target.rglob("*.py"))
                if not any(part.startswith(".") for part in p.relative_to(root).parts)
            )
        elif target.suffix == ".py" and target.exists():
            files.append(target)
        else:
            raise FileNotFoundError(f"lint target {raw!r} not found under {root}")
    # De-duplicate while preserving order.
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def run_lint(paths: list[str], root: Path | str = ".", rules=None, config=None):
    """Lint ``paths`` and return ``(findings, files_scanned)``.

    Findings are sorted by (path, line, col, code) and already account
    for inline suppressions; unused suppressions are appended as
    ``RPL000`` findings.
    """
    from tools.repro_lint.config import LintConfig
    from tools.repro_lint.rules import default_rules

    root = Path(root).resolve()
    config = config or LintConfig()
    rules = default_rules(config) if rules is None else rules

    findings: list[Finding] = []
    contexts: list[FileContext] = []
    suppressions: dict[str, Suppressions] = {}

    for file in collect_files(list(paths), root):
        rel = file.relative_to(root).as_posix()
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            findings.append(
                Finding(rel, exc.lineno or 1, exc.offset or 0, SYNTAX_ERROR,
                        f"could not parse file: {exc.msg}")
            )
            continue
        ctx = FileContext(rel, source, tree)
        contexts.append(ctx)
        suppressions[rel] = Suppressions(ctx.lines)
        for rule in rules:
            findings.extend(rule.check(ctx))

    project = Project(contexts)
    for rule in rules:
        findings.extend(rule.finish(project))

    kept = []
    for finding in findings:
        table = suppressions.get(finding.path)
        if table is not None and table.is_suppressed(finding):
            continue
        kept.append(finding)
    for rel, table in suppressions.items():
        kept.extend(table.unused(rel))
    kept.sort(key=Finding.sort_key)
    return kept, len(contexts)
