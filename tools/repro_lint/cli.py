"""``python -m tools.repro_lint`` — lint the repo's correctness contracts.

Exit codes: 0 clean, 1 findings (including unused suppressions),
2 usage errors (unknown paths, bad flags).
"""

from __future__ import annotations

import argparse
import sys

from tools.repro_lint.config import LintConfig
from tools.repro_lint.engine import run_lint
from tools.repro_lint.reporters import render_json, render_text
from tools.repro_lint.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter: densification bans, RNG "
            "discipline, boundary validation, aliasing/ulp traps and "
            "API/CLI parity, as CI-enforced rules"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root the config's relative paths resolve against",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = LintConfig()
    rules = default_rules(config)
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        print("RPL000  unused-suppression: every inline suppression must match a finding")
        return 0
    paths = list(args.paths) if args.paths else list(config.default_paths)
    try:
        findings, files_scanned = run_lint(
            paths, root=args.root, rules=rules, config=config
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_scanned, rules))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
