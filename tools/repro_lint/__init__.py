"""repro-lint: AST-based linter for this repository's correctness contracts.

The reproduction's performance and reproducibility claims rest on
invariants that used to live only in reviewer vigilance and runtime bench
traps: no densification on the sparse/tiled hot paths, explicit
``np.random.Generator`` threading, ``check_*`` validation at public
boundaries, bit-identity between scalar and vectorised code paths, and
full API/CLI parity for the solve knobs.  This package turns each of them
into a machine-checked rule (``RPL001``-``RPL006``) with inline
``# repro-lint: disable=RPLxxx`` suppressions and unused-suppression
detection, runnable as ``python -m tools.repro_lint``.
"""

from tools.repro_lint.config import LintConfig
from tools.repro_lint.engine import Finding, run_lint
from tools.repro_lint.rules import ALL_RULES, default_rules

__all__ = ["ALL_RULES", "Finding", "LintConfig", "default_rules", "run_lint"]
