"""Repository-specific configuration for the invariant linter.

Everything path-shaped in here is a POSIX-style path *relative to the
repository root* (the ``--root`` the CLI runs from).  The allowlists are
deliberately explicit: each entry names the module that is *allowed* to
break an invariant, and the comment next to it says why.  New entries
belong in code review, not in a quick edit to make CI green.

The parity tables at the bottom are shared with the runtime test
(``tests/test_api_cli_parity.py``) so the static rule RPL006 and the
signature-introspection test can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modules allowed to densify couplings (RPL001).  ``sparse.py`` *owns*
#: ``toarray``/``dense_couplings`` — the ban is on calling them from hot
#: paths, not on defining them.  Everything else must carry an inline
#: ``# repro-lint: disable=RPL001`` with a justification comment.
DENSIFY_PATH_ALLOWLIST: tuple[str, ...] = (
    "src/repro/ising/sparse.py",
)

#: Identifier names that the ``np.asarray``/``np.array`` half of RPL001
#: treats as "probably a coupling object".  A heuristic by construction:
#: the precise bans are ``.toarray()`` and ``dense_couplings()``.
COUPLING_NAMES: frozenset[str] = frozenset(
    {"model", "sparse_model", "packed_model", "coupling", "couplings",
     "hw_model"}
)

#: The one module allowed to call ``np.random.default_rng`` (RPL002):
#: the RNG plumbing itself.  Everyone else takes seeds/generators through
#: ``ensure_rng``/``spawn_rng`` so fixed-seed trajectories stay
#: bit-identical and replayable.
RNG_HOME: str = "src/repro/utils/rng.py"

#: ``np.random`` attributes that are *not* legacy global-state RNG
#: (types and bit generators used in annotations / isinstance checks).
NP_RANDOM_ALLOWED_ATTRS: frozenset[str] = frozenset(
    {
        "default_rng",  # still restricted to RNG_HOME, but not "legacy"
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Count-style keyword names that must be validated at public boundaries
#: (RPL003).  ``check_count`` rejects bools and non-integers; a bare
#: ``int(iterations)`` silently runs ``True`` as one iteration.
COUNT_PARAMS: frozenset[str] = frozenset(
    {
        "iterations",
        "replicas",
        "num_replicas",
        "tile_size",
        "flips_per_iteration",
        "best_every",
    }
)

#: Modules whose *public functions* RPL003 audits (engine ``run()``
#: methods are audited everywhere under ``src/``).
BOUNDARY_MODULES: tuple[str, ...] = (
    "src/repro/core/solver.py",
    "src/repro/core/plan.py",
    "src/repro/core/blockstack.py",
    "src/repro/cli.py",
    "src/repro/serve/jobs.py",
    "src/repro/serve/service.py",
    "src/repro/serve/protocol.py",
)

#: Callables that are known to validate the count parameters they are
#: handed (so forwarding to them satisfies RPL003).  ``solve_maxcut``
#: delegates every count knob to ``solve_ising``, which now delegates to
#: ``compile_plan`` — the boundary where the ``check_*`` battery runs.
#: ``reorder_permutation`` validates ``tile_size`` itself (it is the
#: partition-mode guard), so ``resolve_layout`` forwarding to it is safe.
VALIDATING_SINKS: frozenset[str] = frozenset(
    {
        "solve_ising",
        "solve_sb",
        "_check_solve_args",
        "compile_plan",
        "reorder_permutation",
    }
)

#: Solve-setup primitives owned by ``repro.core.plan`` (RPL007): the
#: ancilla fold/strip pair and the reorder layout race.  Before the
#: compile/execute split these were duplicated across ``_solve_tiled``,
#: ``_solve_sb_tiled`` and the machine constructor and drifted; now any
#: library call site outside the allowlist must route through
#: ``compile_plan``/``resolve_layout`` or carry an audited suppression.
PLAN_SETUP_CALLS: frozenset[str] = frozenset(
    {
        "with_ancilla",
        "reorder_permutation",
        "_strip_ancilla",
        "_strip_ancilla_batch",
    }
)

#: Modules allowed to call the plan-setup primitives (RPL007).  Only the
#: owner today — the rule flags *calls*, so the defining methods in
#: ``model.py``/``sparse.py``/``reorder.py`` need no entry.
PLAN_SETUP_ALLOWLIST: tuple[str, ...] = (
    "src/repro/core/plan.py",
)

#: The API/CLI parity contracts (RPL006 + tests/test_api_cli_parity.py).
#: Each contract pins one CLI subcommand to the API functions it fronts:
#: every keyword of those functions must be reachable through a flag on
#: that subparser.  ``skip_leading`` positional parameters are the
#: payload the subcommand reads from its file/connection arguments
#: (``solve_ising``'s model comes from the instance file); keywords in
#: ``cli_less`` intentionally have no flag and need a rationale comment.
@dataclass(frozen=True)
class ParityContract:
    """One subcommand ↔ API-function parity obligation."""

    subcommand: str
    module: str
    functions: tuple[str, ...]
    skip_leading: int = 1
    #: param → flag, when not the mechanical ``--kebab-case`` form.
    flag_map: tuple[tuple[str, str], ...] = ()
    cli_less: frozenset[str] = frozenset()


PARITY_CONTRACTS: tuple[ParityContract, ...] = (
    # ``reference_cut`` is *computed* by the CLI (``--reference``
    # triggers a reference-cut computation and threads the value).
    ParityContract(
        subcommand="solve",
        module="src/repro/core/solver.py",
        functions=("solve_ising", "solve_maxcut"),
        skip_leading=1,
        flag_map=(("reference_cut", "--reference"),),
    ),
    # ``model`` is parsed from the instance-file argument; ``initial``
    # (a warm-start spin array) is an in-process API affordance with no
    # sensible one-line CLI encoding.
    ParityContract(
        subcommand="submit",
        module="src/repro/serve/jobs.py",
        functions=("job_request",),
        skip_leading=0,
        flag_map=(("flips_per_iteration", "--flips"),),
        cli_less=frozenset({"model", "initial"}),
    ),
    ParityContract(
        subcommand="serve",
        module="src/repro/serve/service.py",
        functions=("service_config",),
        skip_leading=0,
    ),
)

#: Legacy single-contract aliases (kept importable: the runtime parity
#: test grew up on these names and older suppression docs cite them).
PARITY_FUNCTIONS: tuple[str, ...] = PARITY_CONTRACTS[0].functions
PARITY_SOLVER_MODULE: str = PARITY_CONTRACTS[0].module
PARITY_CLI_MODULE: str = "src/repro/cli.py"
PARITY_FLAG_MAP: dict[str, str] = dict(PARITY_CONTRACTS[0].flag_map)
PARITY_CLI_LESS: frozenset[str] = PARITY_CONTRACTS[0].cli_less

#: ``**solver_kwargs`` knobs the CLI exposes under bespoke flags.  Not
#: part of the signatures RPL006 walks, but pinned by the runtime parity
#: test so the flags cannot vanish while the engines still accept them.
SOLVER_KWARG_FLAGS: dict[str, str] = {
    "flips_per_iteration": "--flips",
    "variant": "--sb-variant",
}


@dataclass(frozen=True)
class LintConfig:
    """Bundled configuration handed to every rule instance."""

    densify_path_allowlist: tuple[str, ...] = DENSIFY_PATH_ALLOWLIST
    coupling_names: frozenset[str] = COUPLING_NAMES
    rng_home: str = RNG_HOME
    np_random_allowed_attrs: frozenset[str] = NP_RANDOM_ALLOWED_ATTRS
    count_params: frozenset[str] = COUNT_PARAMS
    boundary_modules: tuple[str, ...] = BOUNDARY_MODULES
    validating_sinks: frozenset[str] = VALIDATING_SINKS
    plan_setup_calls: frozenset[str] = PLAN_SETUP_CALLS
    plan_setup_allowlist: tuple[str, ...] = PLAN_SETUP_ALLOWLIST
    parity_contracts: tuple[ParityContract, ...] = PARITY_CONTRACTS
    parity_functions: tuple[str, ...] = PARITY_FUNCTIONS
    parity_solver_module: str = PARITY_SOLVER_MODULE
    parity_cli_module: str = PARITY_CLI_MODULE
    parity_flag_map: dict[str, str] = field(
        default_factory=lambda: dict(PARITY_FLAG_MAP)
    )
    parity_cli_less: frozenset[str] = PARITY_CLI_LESS

    #: Default lint targets when the CLI is invoked without paths.
    default_paths: tuple[str, ...] = ("src", "benchmarks", "tests")
