"""The invariant rules.

Each rule encodes a correctness contract this repository has actually
been burned by (the PR that motivated it is named in the rule docstring),
so a finding is never stylistic: it is "this line can silently break a
performance claim or a golden trajectory".

Rules implement ``check(ctx)`` for single-file passes and/or
``finish(project)`` for cross-file passes run after every file has been
parsed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from fnmatch import fnmatch

from tools.repro_lint.config import LintConfig
from tools.repro_lint.engine import FileContext, Finding, Project


class Rule:
    """Base class: rules yield findings from per-file or project passes."""

    code: str = "RPL999"
    name: str = "abstract"
    summary: str = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            ctx.path, getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
            self.code, message,
        )


def _call_name(node: ast.Call) -> str | None:
    """The simple (rightmost) name of a call target, if any."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _name_refs(nodes: Iterable[ast.expr]) -> Iterator[str]:
    for arg in nodes:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name):
                yield sub.id


class NoDensifyRule(Rule):
    """RPL001 — densification ban on the sparse/tiled hot paths.

    ``.toarray()`` / ``dense_couplings()`` materialise the O(n²) coupling
    matrix that PR 1/2 spent two releases eliminating; one stray call on a
    solver path silently blows the O(nnz) memory budget that the scaling
    benches assert.  Programming a physical crossbar *is* densification,
    so the arch sites carry inline allowlist entries and ``sparse.py``
    (which owns the converters) is path-allowlisted in the config.
    """

    code = "RPL001"
    name = "no-densify"
    summary = (
        "no .toarray()/dense_couplings()/np.asarray-on-couplings outside "
        "the allowlisted arch/quantize sites"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if any(fnmatch(ctx.path, pat) for pat in self.config.densify_path_allowlist):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "toarray":
                yield self.finding(
                    ctx, node,
                    ".toarray() materialises the dense (n, n) coupling "
                    "matrix — solver paths must stay O(nnz); use "
                    "coupling_ops(), or suppress with a justification if "
                    "this is a crossbar-programming/equivalence site",
                )
                continue
            dotted = ctx.dotted(func)
            if dotted is not None and (
                dotted == "dense_couplings" or dotted.endswith(".dense_couplings")
            ):
                yield self.finding(
                    ctx, node,
                    "dense_couplings() densifies either backend — only "
                    "crossbar-programming sites may call it (inline-"
                    "suppress with the reason), solver paths go through "
                    "coupling_ops()",
                )
                continue
            if dotted in ("numpy.asarray", "numpy.array") and node.args:
                arg = node.args[0]
                target = None
                if isinstance(arg, ast.Name):
                    target = arg.id
                elif isinstance(arg, ast.Attribute):
                    target = arg.attr
                if target in self.config.coupling_names:
                    yield self.finding(
                        ctx, node,
                        f"np.{dotted.rsplit('.', 1)[1]}({target}) on a "
                        "coupling object densifies it — convert through "
                        "as_backend()/dense_couplings() at an allowlisted "
                        "site instead",
                    )


class RngDisciplineRule(Rule):
    """RPL002 — RNG discipline for bit-identical fixed-seed trajectories.

    Legacy ``np.random.*`` module calls mutate hidden global state, so one
    call anywhere desynchronises every golden-regression stream.  Even
    ``default_rng`` is restricted to ``repro.utils.rng``: components take
    seeds through ``ensure_rng``/``spawn_rng`` so streams thread
    explicitly and replica spawning stays deterministic.
    """

    code = "RPL002"
    name = "rng-discipline"
    summary = (
        "no legacy np.random.* global-state calls; np.random.default_rng "
        "only inside repro.utils.rng (use ensure_rng/spawn_rng)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted is None or not dotted.startswith("numpy.random."):
                continue
            attr = dotted[len("numpy.random."):].split(".")[0]
            if dotted == "numpy.random.default_rng":
                if ctx.path != self.config.rng_home:
                    yield self.finding(
                        ctx, node,
                        "np.random.default_rng() outside repro.utils.rng — "
                        "take an RngLike seed and route it through "
                        "ensure_rng()/spawn_rng() so streams thread "
                        "explicitly",
                    )
            elif attr not in self.config.np_random_allowed_attrs:
                yield self.finding(
                    ctx, node,
                    f"legacy global-state RNG call np.random.{attr}() — "
                    "it desynchronises every fixed-seed trajectory; use a "
                    "Generator from ensure_rng()",
                )


class BoundaryValidationRule(Rule):
    """RPL003 — count parameters validated at public boundaries.

    ``iterations=True`` used to slip through ``operator.index`` and
    silently run one iteration (fixed in PR 2/4 with ``check_count``).
    Public functions in the solve/CLI modules and every engine ``run()``
    method must validate count-style parameters with a ``check_*``
    helper, or forward them to a callee that does (``solve_ising``).
    """

    code = "RPL003"
    name = "boundary-validation"
    summary = (
        "public solve/CLI functions and engine run() methods must "
        "check_*-validate count kwargs (iterations/replicas/...) or "
        "forward them to a validating sink"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        is_boundary_module = ctx.path in self.config.boundary_modules
        is_src = ctx.path.startswith("src/")
        if not (is_boundary_module or is_src):
            return
        for func, in_class in self._functions(ctx.tree):
            audited = (
                (is_boundary_module and not func.name.startswith("_"))
                or (is_src and in_class and func.name == "run")
            )
            if not audited:
                continue
            params = [
                a.arg
                for a in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs)
                if a.arg not in ("self", "cls")
            ]
            for param in params:
                if param not in self.config.count_params:
                    continue
                if not self._validated(func, param):
                    yield self.finding(
                        ctx, func,
                        f"{func.name}() accepts count parameter "
                        f"{param!r} but never validates it — call "
                        f"check_count(\"{param}\", {param}) at the "
                        f"boundary (bools/floats otherwise run silently)",
                    )

    @staticmethod
    def _functions(tree: ast.Module):
        """Yield ``(function_node, is_method)`` over the whole module."""

        def walk(node: ast.AST, in_class: bool):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, in_class
                    yield from walk(child, False)
                elif isinstance(child, ast.ClassDef):
                    yield from walk(child, True)
                else:
                    yield from walk(child, in_class)

        yield from walk(tree, False)

    def _validated(self, func: ast.AST, param: str) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            is_checker = name.startswith("check_")
            is_sink = name in self.config.validating_sinks
            if not (is_checker or is_sink):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            if param in _name_refs(values):
                return True
        return False


class ReshapeScatterAliasRule(Rule):
    """RPL004 — the F-order aliasing trap (the PR 4 bug class).

    ``g.reshape(-1)[flat] -= ...`` only updates ``g`` when the reshape
    returns a *view*, which silently depends on ``g`` being C-contiguous
    — a fancy-indexing gather upstream (``fields[:, perm]``) returns
    F-order and turns the scatter into a write to a temporary copy.
    ``ufunc.at(x.reshape(-1), ...)`` (the packed backend's XOR-word
    scatter) carries the identical trap: the ufunc mutates the view, and
    the mutation only reaches ``x`` when the view aliases it.  Audited
    sites must suppress inline, stating why the operand is guaranteed
    C-contiguous.
    """

    code = "RPL004"
    name = "reshape-scatter-alias"
    summary = (
        "no scatter-assignment or ufunc.at through .reshape(-1)/.ravel() "
        "views — aliasing silently depends on memory order"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_ufunc_at(ctx, node)
                continue
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Call)
                    and isinstance(target.value.func, ast.Attribute)
                ):
                    continue
                call = target.value
                attr = call.func.attr
                if attr == "ravel" or (
                    attr == "reshape" and self._is_flatten(call.args)
                ):
                    yield self.finding(
                        ctx, node,
                        f"scatter-assignment through .{attr}() aliases the "
                        "base array only when it is C-contiguous — an "
                        "F-ordered operand (e.g. from a fancy-index "
                        "gather) turns this into a silent no-op on a "
                        "copy; scatter into the array directly or "
                        "suppress with the contiguity argument",
                    )

    def _check_ufunc_at(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        """Flag ``<ufunc>.at(x.reshape(-1)/x.ravel(), ...)`` scatters."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "at" and node.args):
            return
        first = node.args[0]
        if not (
            isinstance(first, ast.Call)
            and isinstance(first.func, ast.Attribute)
        ):
            return
        attr = first.func.attr
        if attr == "ravel" or (attr == "reshape" and self._is_flatten(first.args)):
            yield self.finding(
                ctx, node,
                f"ufunc.at through .{attr}() mutates the base array only "
                "when the flattening view aliases it — an F-ordered "
                "operand turns the scatter into a silent no-op on a "
                "copy; scatter into the array directly or suppress "
                "with the contiguity argument",
            )

    @staticmethod
    def _is_flatten(args: list[ast.expr]) -> bool:
        if len(args) != 1:
            return False
        arg = args[0]
        if (
            isinstance(arg, ast.UnaryOp)
            and isinstance(arg.op, ast.USub)
            and isinstance(arg.operand, ast.Constant)
            and arg.operand.value == 1
        ):
            return True
        return isinstance(arg, ast.Constant) and arg.value == -1


class UlpDriftRule(Rule):
    """RPL005 — ulp-drift trap (the PR 6 bug class).

    ``np.power``/``math.pow`` and the ``**`` operator may differ in the
    last ulp, so a vectorised profile built with one and a scalar path
    built with the other breaks bit-identity between access paths (the
    ``GeometricSchedule`` cache exists precisely because of this).  Use
    ``**`` on both siblings.
    """

    code = "RPL005"
    name = "ulp-drift"
    summary = "no np.power/math.pow — use ** so vectorised and scalar paths agree bit-for-bit"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted in ("numpy.power", "math.pow"):
                fn = "np.power" if dotted == "numpy.power" else "math.pow"
                yield self.finding(
                    ctx, node,
                    f"{fn}() can differ from ** in the last ulp, breaking "
                    "bit-identity with the sibling scalar/vectorised "
                    "path — write the exponentiation with ** on both",
                )


class ApiCliParityRule(Rule):
    """RPL006 — API/CLI parity: no half-wired solve/serve knobs.

    Each ``ParityContract`` in the config pins one CLI subcommand to the
    API functions it fronts: every keyword of ``solve_ising``/
    ``solve_maxcut`` must be reachable through ``solve``, every
    ``job_request`` knob through ``submit``, every ``service_config``
    knob through ``serve`` (PR 2-6 each added a solve knob, and each had
    to remember the flag by hand).  The expected flag is the kebab-cased
    keyword unless the contract's flag map says otherwise; intentionally
    CLI-less keywords live in the contract's allowlist, which the
    runtime parity test pins too.
    """

    code = "RPL006"
    name = "api-cli-parity"
    summary = (
        "every keyword of a parity-contracted API function needs a "
        "--flag on its CLI subcommand (or a config allowlist entry)"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        cli = project.get(self.config.parity_cli_module)
        if cli is None:
            return
        for contract in self.config.parity_contracts:
            module = project.get(contract.module)
            if module is None:
                continue
            flags = self._subparser_flags(cli, contract.subcommand)
            if flags is None:
                yield Finding(
                    cli.path, 1, 0, self.code,
                    f"could not locate the {contract.subcommand!r} subparser "
                    f"(add_parser(\"{contract.subcommand}\", ...)) — its "
                    f"API/CLI parity contract has nothing to check against",
                )
                continue
            flag_map = dict(contract.flag_map)
            for node in module.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                if node.name not in contract.functions:
                    continue
                params = [
                    a.arg
                    for a in (*node.args.posonlyargs, *node.args.args)
                ]
                params += [a.arg for a in node.args.kwonlyargs]
                for param in params[contract.skip_leading:]:
                    if param in contract.cli_less:
                        continue
                    expected = flag_map.get(
                        param, "--" + param.replace("_", "-")
                    )
                    if expected not in flags:
                        yield Finding(
                            module.path, node.lineno, node.col_offset,
                            self.code,
                            f"{node.name}() keyword {param!r} has no CLI "
                            f"flag {expected} on the {contract.subcommand} "
                            f"subcommand — wire it up in cli.py or "
                            f"allowlist it in tools/repro_lint/config.py "
                            f"(PARITY_CONTRACTS)",
                        )

    @staticmethod
    def _subparser_flags(cli: FileContext, subcommand: str) -> set[str] | None:
        """Option strings registered on the named subparser."""
        parser_vars: set[str] = set()
        for node in ast.walk(cli.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "add_parser"
                and node.value.args
                and isinstance(node.value.args[0], ast.Constant)
                and node.value.args[0].value == subcommand
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        parser_vars.add(target.id)
        if not parser_vars:
            return None
        flags: set[str] = set()
        for node in ast.walk(cli.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in parser_vars
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        if arg.value.startswith("--"):
                            flags.add(arg.value)
        return flags


class PlanOwnershipRule(Rule):
    """RPL007 — solve-setup primitives belong to ``repro.core.plan``.

    The compile/execute refactor (PR 9) collapsed three divergent copies
    of the solve setup — ancilla fold/strip and the reorder layout race
    lived in ``_solve_tiled``, ``_solve_sb_tiled`` *and* the machine
    constructor, and had already drifted once (the tiled-SB path forgot
    the machine's tile-size guard).  The plan compiler is now the single
    owner: library code outside ``src/repro/core/plan.py`` may not call
    ``with_ancilla``/``reorder_permutation`` or the ancilla strip helpers
    directly — route through ``compile_plan``/``resolve_layout`` (or
    suppress inline where a layer legitimately owns the transformation,
    e.g. a transparency test probing the fold itself).  Tests and
    benchmarks are exempt by design: asserting fold/strip semantics
    requires calling them.
    """

    code = "RPL007"
    name = "plan-ownership"
    summary = (
        "no with_ancilla/reorder_permutation/ancilla-strip calls in "
        "library code outside repro/core/plan.py — route through "
        "compile_plan/resolve_layout"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.path.startswith("src/"):
            return
        if any(fnmatch(ctx.path, pat) for pat in self.config.plan_setup_allowlist):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in self.config.plan_setup_calls:
                yield self.finding(
                    ctx, node,
                    f"{name}() is a solve-setup primitive owned by "
                    "repro.core.plan — calling it here re-creates the "
                    "duplicated-setup bug class the compile/execute split "
                    "removed; go through compile_plan()/resolve_layout() "
                    "or suppress with the reason this layer owns the "
                    "transformation",
                )


ALL_RULES: tuple[type[Rule], ...] = (
    NoDensifyRule,
    RngDisciplineRule,
    BoundaryValidationRule,
    ReshapeScatterAliasRule,
    UlpDriftRule,
    ApiCliParityRule,
    PlanOwnershipRule,
)


def default_rules(config: LintConfig) -> list[Rule]:
    """Instantiate every registered rule against ``config``."""
    return [cls(config) for cls in ALL_RULES]
